"""The request-queue front door over a batch-capable graph store.

:class:`GraphService` is the "heavy traffic" layer of the reproduction: many
client threads submit single operations (insert / delete / membership /
successors, plus whole analytics jobs), the service coalesces them into
micro-batches and drives each batch through the store's batch APIs --
``insert_edges`` / ``delete_edges`` / ``has_edges`` / ``successors_many`` on
a :class:`~repro.core.sharded.ShardedCuckooGraph` by default, and the
:class:`~repro.analytics.engine.TraversalEngine` for analytics jobs.  Every
request gets a :class:`concurrent.futures.Future` that carries its result or
exception back, so clients never observe batching except as throughput.

Design points:

* **One dispatcher thread** owns the store.  Client threads only touch the
  bounded queue, so the store itself needs no locking and the sharded
  store's own executor (``executor="threads"``) remains free to fan a batch
  out across shards.
* **Order-preserving batching.**  A dispatch window is split into maximal
  runs of consecutive same-kind requests (see
  :mod:`repro.service.batcher`); each run is one store batch call, so the
  executed schedule is exactly the submission order.  Per-request insert /
  delete results are recovered from a batched pre-probe (``has_edges``)
  plus in-window bookkeeping -- two batch calls per mutation run, zero
  per-operation store calls.  (Result attribution assumes distinct-edge
  store semantics; a weighted store still executes correctly but
  "delete actually removed the edge" degenerates to "edge was present".)
* **Backpressure.**  The queue is bounded; ``policy="block"`` makes
  submitters wait (pushback), ``policy="reject"`` sheds load by raising
  :class:`~repro.service.errors.QueueFullError`.
* **Lifecycle.**  ``start`` launches the dispatcher, ``close`` stops intake,
  drains every queued request, resolves their futures and joins the thread;
  both are idempotent and the class is a context manager.  Submissions
  before ``start`` simply queue up (the first window then coalesces them),
  which the spy-store tests use to make batching deterministic.

Under CPython's GIL the dispatcher does not add parallel compute; the point
is the *traffic shape* -- bounded intake, coalesced store calls, percentile
latency accounting -- with the store's executor seam remaining the cut point
for real parallelism.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Callable, Dict, List, Optional

from ..analytics import (
    CachedTraversalEngine,
    TraversalEngine,
    bfs,
    canonical_components,
    canonical_pagerank,
    dijkstra,
    pagerank,
    strongly_connected_components,
    top_degree_nodes,
)
from ..core.sharded import ShardedCuckooGraph
from ..interfaces import DynamicGraphStore
from ..persist.store import PersistentStore
from ..replicate import FRESHNESS_POLICIES, ReplicationGroup
from .batcher import CLOCK, Request, gather_window, split_runs
from .errors import QueueFullError, ServiceClosedError, ServiceError
from .metrics import ServiceMetrics
from .queue import POLICIES, BoundedRequestQueue

#: Analytics jobs a service executes, each through a TraversalEngine so the
#: store sees batched frontier expansion, never per-node round-trips.
ANALYTICS_HANDLERS: Dict[str, Callable] = {
    "bfs": bfs,
    "sssp": dijkstra,
    "pagerank": pagerank,
    "components": strongly_connected_components,
    "wcc": canonical_components,
    "top_degree_nodes": top_degree_nodes,
}

#: Analytics execution modes: ``"engine"`` recomputes every job through a
#: fresh :class:`TraversalEngine`; ``"incremental"`` routes jobs to a
#: delta-maintained :class:`~repro.analytics.AnalyticsFollower` replica.
ANALYTICS_MODES = ("engine", "incremental")

#: Durability modes: ``"none"`` leaves persistence entirely to the store;
#: ``"batch"`` turns every dispatched mutation run into one group commit
#: (``store.sync()``) *before* the run's futures resolve.
DURABILITY_MODES = ("none", "batch")


class GraphService:
    """Micro-batching request service over a batch-capable graph store.

    Args:
        store: Any :class:`~repro.interfaces.DynamicGraphStore`; defaults to
            a fresh ``ShardedCuckooGraph(num_shards=4)``.  A store created
            here is owned (and closed) by the service; a caller-provided
            store is left open on :meth:`close` unless ``own_store=True``.
        max_batch: Upper bound on requests per dispatch window.
        max_delay_s: How long a window may wait for stragglers after its
            first request; ``0`` (default) closes the window as soon as the
            queue runs dry, favouring latency.
        queue_capacity: Bound on queued (undispatched) requests.
        policy: Backpressure policy, ``"block"`` or ``"reject"``.
        own_store: Force (or forbid) closing the store on :meth:`close`.
        durability: ``"none"`` (default) or ``"batch"``.  With ``"batch"``
            the store must expose a ``sync()`` durability point (a
            :class:`~repro.persist.PersistentStore`, typically constructed
            with ``sync_on_commit=False``); the dispatcher then calls it
            once per mutation run, after the batch store calls and before
            any of the run's futures resolve -- many client operations, one
            group commit (an fsync only per WAL segment the run actually
            touched), which is the whole point of group commit.
        replicas: Number of read replicas (0 disables replication).  The
            store must then be a :class:`~repro.persist.PersistentStore`:
            the service builds a :class:`~repro.replicate.ReplicationGroup`
            over its WAL and routes read runs (``has`` / ``successors``)
            and analytics jobs round-robin across the followers, while
            every mutation stays on the primary.  Per-replica read counts
            and the observed replication lag land in :class:`ServiceMetrics`.
        freshness: Read policy with ``replicas > 0``:
            ``"read_your_writes"`` (default) runs the follower's barrier to
            the primary's commit index before serving, so a client that saw
            its mutation's future resolve always reads it back;
            ``"any"`` serves whatever the replica has applied (durable
            commits only), trading staleness for not forcing a flush.
        analytics: ``"engine"`` (default) recomputes every analytics job
            from scratch through a fresh :class:`TraversalEngine`;
            ``"incremental"`` attaches a delta-maintained
            :class:`~repro.analytics.AnalyticsFollower` replica (the store
            must be a :class:`~repro.persist.PersistentStore`; works with
            ``replicas=0``) and routes analytics jobs to it at the
            configured ``freshness``.  ``pagerank``/``wcc``/
            ``top_degree_nodes`` are then served O(changes) from the
            maintained kernels, the rest through a cache-backed engine.
            Note the documented deviation: incremental ``pagerank`` returns
            the *canonical* deterministic formulation
            (:func:`~repro.analytics.canonical_pagerank`), whose float
            accumulation order is sorted-by-node rather than the legacy
            kernel's store-iteration order.
        replica_transport: Optional
            :class:`~repro.replicate.ReplicationTransport` the replication
            group's followers are connected through; defaults to the
            in-process queue transport.  Remote replicas do not use this
            seam -- they attach through a
            :class:`~repro.replicate.ReplicationServer` wrapped around
            ``service.replication.primary``.

    Example:
        >>> with GraphService() as service:
        ...     fut = service.insert_edge(1, 2)
        ...     fut.result()
        True
    """

    def __init__(
        self,
        store: Optional[DynamicGraphStore] = None,
        *,
        max_batch: int = 128,
        max_delay_s: float = 0.0,
        queue_capacity: int = 1024,
        policy: str = "block",
        own_store: Optional[bool] = None,
        durability: str = "none",
        replicas: int = 0,
        freshness: str = "read_your_writes",
        analytics: str = "engine",
        replica_transport=None,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay_s < 0:
            raise ValueError(f"max_delay_s must be >= 0, got {max_delay_s}")
        if policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, got {policy!r}")
        if durability not in DURABILITY_MODES:
            raise ValueError(
                f"durability must be one of {DURABILITY_MODES}, got {durability!r}"
            )
        if replicas < 0:
            raise ValueError(f"replicas must be >= 0, got {replicas}")
        if freshness not in FRESHNESS_POLICIES:
            raise ValueError(
                f"freshness must be one of {FRESHNESS_POLICIES}, got {freshness!r}"
            )
        if analytics not in ANALYTICS_MODES:
            raise ValueError(
                f"analytics must be one of {ANALYTICS_MODES}, got {analytics!r}"
            )
        self._own_store = store is None if own_store is None else own_store
        self.store = store if store is not None else ShardedCuckooGraph(num_shards=4)
        self.freshness = freshness
        self.analytics_mode = analytics
        if replicas and not isinstance(self.store, PersistentStore):
            raise ValueError(
                "replicas need a PersistentStore to ship the WAL from; "
                "wrap the store in repro.persist.PersistentStore (or use "
                "GraphClient.durable(replicas=...))"
            )
        if analytics == "incremental" and not isinstance(self.store, PersistentStore):
            raise ValueError(
                'analytics="incremental" maintains its replica from the '
                "WAL change feed; wrap the store in "
                "repro.persist.PersistentStore (or use GraphClient.durable("
                'analytics="incremental"))'
            )
        self.durability = durability
        if durability == "batch":
            sync = getattr(self.store, "sync", None)
            if not callable(sync):
                raise ValueError(
                    'durability="batch" needs a store with a sync() durability '
                    "point (wrap it in repro.persist.PersistentStore)"
                )
            self._durable_sync: Optional[Callable[[], None]] = sync
        else:
            self._durable_sync = None
        self.max_batch = max_batch
        self.max_delay_s = max_delay_s
        self._queue = BoundedRequestQueue(capacity=queue_capacity, policy=policy)
        self.metrics = ServiceMetrics()
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        self._durability_failed: Optional[Exception] = None
        self._lifecycle_lock = threading.Lock()
        # Built last: every other argument has been validated by now, so a
        # constructor failure can no longer leak followers (or leave an
        # orphaned tailer subscribed to the store's compaction policy).
        self._replication: Optional[ReplicationGroup] = (
            ReplicationGroup(self.store, replicas=replicas,
                             transport=replica_transport,
                             analytics=analytics == "incremental")
            if replicas or analytics == "incremental" else None
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    @property
    def running(self) -> bool:
        """Whether the dispatcher thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    @property
    def replication(self) -> Optional[ReplicationGroup]:
        """The replication group (``None`` when ``replicas=0`` and
        ``analytics="engine"``)."""
        return self._replication

    @property
    def analytics_follower(self):
        """The delta-maintained analytics replica, or ``None``."""
        return (
            self._replication.analytics_follower
            if self._replication is not None else None
        )

    @property
    def durability_failed(self) -> Optional[Exception]:
        """The fsync error that fail-stopped a ``durability="batch"`` service.

        ``None`` while the durable path is healthy.  Once set, submissions
        raise :class:`~repro.service.errors.ServiceError`; the right move
        is to close the service and :func:`repro.persist.recover` the store
        directory, whose contents are exactly the commits that fsynced.
        """
        return self._durability_failed

    def start(self) -> "GraphService":
        """Launch the dispatcher thread (idempotent until closed)."""
        with self._lifecycle_lock:
            if self._closed:
                raise ServiceClosedError("cannot start a closed GraphService")
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._dispatch_loop, name="graph-service", daemon=True
                )
                self._thread.start()
        return self

    def close(self) -> None:
        """Stop intake, drain in-flight requests, join the dispatcher.

        Idempotent.  Every request queued before ``close`` is still
        dispatched and its future resolved; requests submitted afterwards
        raise :class:`ServiceClosedError`.  If the service was never
        started, the queued futures are cancelled instead (there is no
        dispatcher to execute them).  An owned store is closed last.
        """
        with self._lifecycle_lock:
            if self._closed:
                return
            self._closed = True
            leftovers = self._queue.close()
            thread = self._thread
        if thread is not None:
            thread.join()
        else:
            for request in leftovers:
                if request.future.cancel():
                    self.metrics.record_cancelled()
        if self._replication is not None:
            self._replication.close()
        if self._own_store:
            close = getattr(self.store, "close", None)
            if callable(close):
                close()

    def __enter__(self) -> "GraphService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Submission API (any thread)
    # ------------------------------------------------------------------ #

    def submit(self, kind: str, payload: object) -> Future:
        """Enqueue one request; the returned future carries result or error.

        Raises:
            ServiceClosedError: the service is closed (or closes while a
                ``policy="block"`` submitter is waiting for queue space).
            QueueFullError: the queue is full under ``policy="reject"``.
            ValueError: unknown ``kind`` or unknown analytics task.
        """
        if kind not in ("insert", "delete", "has", "successors", "analytics"):
            raise ValueError(f"unknown request kind {kind!r}")
        if kind == "analytics":
            task = payload[0]
            if task not in ANALYTICS_HANDLERS:
                raise ValueError(
                    f"unknown analytics task {task!r}; "
                    f"expected one of {sorted(ANALYTICS_HANDLERS)}"
                )
        if self._closed:
            raise ServiceClosedError("GraphService is closed")
        if self._durability_failed is not None:
            raise ServiceError(
                "durability group commit failed earlier; the service is "
                "fail-stopped (close it, then recover the store from disk)"
            ) from self._durability_failed
        request = Request(kind, payload)
        try:
            self._queue.put(request)
        except QueueFullError:
            self.metrics.record_rejected()
            raise
        # Counted only after a successful enqueue, so the ledger invariant
        # (submitted == resolved + failed + cancelled, rejected separate)
        # holds even when backpressure fires or a close races the put.
        self.metrics.record_submit(kind)
        return request.future

    def insert_edge(self, u: int, v: int) -> Future:
        """Future[bool]: was ``⟨u, v⟩`` newly inserted?"""
        return self.submit("insert", (u, v))

    def delete_edge(self, u: int, v: int) -> Future:
        """Future[bool]: was ``⟨u, v⟩`` present (and removed)?"""
        return self.submit("delete", (u, v))

    def has_edge(self, u: int, v: int) -> Future:
        """Future[bool]: is ``⟨u, v⟩`` stored?"""
        return self.submit("has", (u, v))

    def successors(self, u: int) -> Future:
        """Future[list[int]]: out-neighbours of ``u``."""
        return self.submit("successors", u)

    def analytics(self, task: str, *args, **kwargs) -> Future:
        """Future: run a whole analytics job (see :data:`ANALYTICS_HANDLERS`)."""
        return self.submit("analytics", (task, args, kwargs))

    def metrics_summary(self) -> Dict[str, object]:
        """Snapshot of request/batch/latency metrics (see ServiceMetrics)."""
        if self._replication is not None:
            # Failover-relevant health: followers the primary evicted because
            # their channel died mid-broadcast (never via a clean detach).
            self.metrics.record_evictions(self._replication.primary.evictions)
        # Hot/cold tier health when the service fronts a TieredStore --
        # directly or wrapped in a PersistentStore (whose ``.store`` is the
        # tiered structure).
        for candidate in (self.store, getattr(self.store, "store", None)):
            stats = getattr(candidate, "tier_stats", None)
            if callable(stats):
                self.metrics.record_tier_stats(stats())
                break
        return self.metrics.summary()

    @property
    def pending(self) -> int:
        """Requests queued but not yet picked up by the dispatcher."""
        return len(self._queue)

    # ------------------------------------------------------------------ #
    # Dispatcher (single thread)
    # ------------------------------------------------------------------ #

    def _dispatch_loop(self) -> None:
        while True:
            window = gather_window(self._queue, self.max_batch, self.max_delay_s)
            if not window:
                if self._queue.drained():
                    return
                continue
            for kind, run in split_runs(window):
                self._dispatch_run(kind, run)

    def _read_store(self) -> DynamicGraphStore:
        """The store a read run executes against.

        With replicas, reads round-robin across the followers at the
        configured freshness (the dispatcher thread drives the pump/barrier,
        so replica state only ever advances between runs -- never while one
        executes); without, the primary serves its own reads.
        """
        if self._replication is None or not self._replication.replicas:
            # No read replicas (an analytics-only group still lands here):
            # the primary serves its own reads.
            return self.store
        follower, index = self._replication.next_follower()
        lag = self._replication.refresh(follower, self.freshness)
        self.metrics.record_replica_read(index, lag)
        return follower.store

    def _dispatch_run(self, kind: str, run: List[Request]) -> None:
        """Execute one same-kind run with batch store calls; resolve futures."""
        live = [r for r in run if r.future.set_running_or_notify_cancel()]
        skipped = len(run) - len(live)
        for _ in range(skipped):
            self.metrics.record_cancelled()
        if not live:
            return
        if kind == "analytics":
            if self.analytics_mode == "incremental":
                try:
                    follower = self._refresh_incremental()
                except Exception as exc:
                    now = CLOCK()
                    for request in live:
                        request.future.set_exception(exc)
                        self.metrics.record_failed(now - request.enqueued_at)
                    return
                self.metrics.record_batch(len(live), store_calls=len(live))
                for request in live:
                    self._run_analytics_incremental(request, follower)
                return
            try:
                store = self._read_store()
            except Exception as exc:
                now = CLOCK()
                for request in live:
                    request.future.set_exception(exc)
                    self.metrics.record_failed(now - request.enqueued_at)
                return
            # Counted only once the run is actually going to hit a store,
            # matching the _execute_batch paths.
            self.metrics.record_batch(len(live), store_calls=len(live))
            for request in live:
                self._run_analytics(request, store)
            return
        try:
            results, store_calls = self._execute_batch(kind, live)
        except Exception as exc:  # route the failure to every caller in the run
            now = CLOCK()
            for request in live:
                request.future.set_exception(exc)
                self.metrics.record_failed(now - request.enqueued_at)
            return
        if self._durable_sync is not None and kind in ("insert", "delete"):
            # Group commit: the whole run becomes durable before any of the
            # callers' futures resolve.  An fsync failure is fail-stop: the
            # run's callers get the error, and the service refuses further
            # submissions -- fsync-failure semantics are murky enough
            # (the OS may drop the unflushed write silently) that promising
            # durability for anything after it would be a lie.
            try:
                self._durable_sync()
            except Exception as exc:
                self._durability_failed = exc
                now = CLOCK()
                for request in live:
                    request.future.set_exception(exc)
                    self.metrics.record_failed(now - request.enqueued_at)
                return
            self.metrics.record_commit()
        if self._replication is not None and kind in ("insert", "delete"):
            # Keep the replicas' queues draining at traffic pace: ship what
            # this run committed (only flushed records travel) and let every
            # follower apply it, so a write-heavy stretch never accumulates
            # the whole history in the in-process channels.
            self._replication.advance()
        self.metrics.record_batch(len(live), store_calls=store_calls)
        now = CLOCK()
        for request, value in zip(live, results):
            request.future.set_result(value)
            self.metrics.record_resolved(now - request.enqueued_at)

    def _execute_batch(self, kind: str, run: List[Request]):
        """One run -> batch store calls -> per-request results.

        Returns ``(results, store_calls)``; results align with ``run``.
        Read runs go through :meth:`_read_store` (a replica when the
        service is replicated); mutation runs always hit the primary.
        """
        if kind == "has":
            edges = [r.payload for r in run]
            return self._read_store().has_edges(edges), 1
        if kind == "successors":
            nodes = [r.payload for r in run]
            fanned = self._read_store().successors_many(nodes)
            # Copy: two requests for the same node must not share one list.
            return [list(fanned[u]) for u in nodes], 1
        store = self.store
        edges = [r.payload for r in run]
        present = store.has_edges(edges)
        if kind == "insert":
            store.insert_edges(edges)
            seen: set = set()
            results = []
            for edge, was_present in zip(edges, present):
                results.append(not was_present and edge not in seen)
                seen.add(edge)
            return results, 2
        if kind == "delete":
            store.delete_edges(edges)
            gone: set = set()
            results = []
            for edge, was_present in zip(edges, present):
                results.append(was_present and edge not in gone)
                if was_present:
                    gone.add(edge)
            return results, 2
        raise AssertionError(f"unreachable kind {kind!r}")

    def _refresh_incremental(self):
        """Barrier the analytics follower, fold the delta into its kernels.

        Runs once per analytics run (the dispatcher thread owns the pump,
        so no ops arrive while the run's jobs execute).  Records the
        ISSUE's "analytics" metrics: the dirty-source count the change feed
        had accumulated, the incremental-vs-recompute decision taken, and
        the cache's cumulative hit-rate counters.
        """
        follower = self._replication.analytics_follower
        self._replication.refresh(follower, self.freshness)
        dirty = follower.cache.dirty_count
        decision = follower.refresh_analytics()
        self.metrics.record_analytics_run(decision, dirty, follower.cache.stats())
        return follower

    def _run_analytics_incremental(self, request: Request, follower) -> None:
        """Serve one analytics job from the delta-maintained replica.

        ``pagerank`` (at the follower's configured sweep count / damping),
        ``wcc`` and ``top_degree_nodes`` come straight from the maintained
        kernels -- O(answer), no store calls.  Everything else (and
        ``pagerank`` with non-default parameters) recomputes through a
        fresh cache-backed engine, so the store's materialization phase is
        served from the adjacency cache.
        """
        task, args, kwargs = request.payload
        try:
            result = self._serve_incremental(task, args, kwargs, follower)
        except Exception as exc:
            request.future.set_exception(exc)
            self.metrics.record_failed(CLOCK() - request.enqueued_at)
            return
        request.future.set_result(result)
        self.metrics.record_resolved(CLOCK() - request.enqueued_at)

    def _serve_incremental(self, task: str, args, kwargs, follower):
        if task == "pagerank":
            iterations = args[0] if len(args) > 0 else kwargs.get(
                "iterations", follower.iterations)
            damping = args[1] if len(args) > 1 else kwargs.get(
                "damping", follower.damping)
            if (iterations, damping) == (follower.iterations, follower.damping):
                return follower.pagerank()
            return canonical_pagerank(
                follower.store, iterations, damping,
                engine=CachedTraversalEngine(follower.store, follower.cache),
            )
        if task == "wcc":
            return follower.components()
        if task == "top_degree_nodes":
            count = args[0] if args else kwargs["count"]
            return follower.top_degree_nodes(count)
        handler = ANALYTICS_HANDLERS[task]
        engine = CachedTraversalEngine(follower.store, follower.cache)
        return handler(follower.store, *args, engine=engine, **kwargs)

    def _run_analytics(self, request: Request,
                       store: Optional[DynamicGraphStore] = None) -> None:
        """Analytics jobs execute one by one; exceptions stay per-request.

        ``store`` is the (possibly replica) store the run was routed to;
        the whole job runs against that one consistent state.
        """
        task, args, kwargs = request.payload
        handler = ANALYTICS_HANDLERS[task]
        if store is None:
            store = self.store
        try:
            engine = TraversalEngine(store)
            result = handler(store, *args, engine=engine, **kwargs)
        except Exception as exc:
            request.future.set_exception(exc)
            self.metrics.record_failed(CLOCK() - request.enqueued_at)
            return
        request.future.set_result(result)
        self.metrics.record_resolved(CLOCK() - request.enqueued_at)
