"""Bounded FIFO request queue with explicit backpressure and close semantics.

``queue.Queue`` almost fits, but the service needs three behaviours it does
not provide cleanly: an immediate *reject* mode for full queues (the
backpressure policy a traffic-shedding front door wants), a ``close`` that
wakes every blocked producer/consumer exactly once, and gets that keep
draining items after close so in-flight requests are never dropped.  The
implementation is a deque guarded by one condition variable.
"""

from __future__ import annotations

import time
from collections import deque
from threading import Condition
from typing import Optional

from .errors import QueueFullError, ServiceClosedError

#: Backpressure policies accepted by :class:`BoundedRequestQueue`.
POLICIES = ("block", "reject")


class BoundedRequestQueue:
    """FIFO queue of at most ``capacity`` items.

    Args:
        capacity: Maximum number of queued (not yet dispatched) items.
        policy: What a producer experiences when the queue is full --
            ``"block"`` waits for space (backpressure propagates to the
            caller's thread), ``"reject"`` raises :class:`QueueFullError`
            immediately (the caller sheds load).

    Close semantics: after :meth:`close`, ``put`` raises
    :class:`ServiceClosedError` (including producers already blocked on a
    full queue), while ``get`` keeps returning queued items until the queue
    is drained -- consumers discover termination via :attr:`closed` plus an
    empty queue.
    """

    def __init__(self, capacity: int = 1024, policy: str = "block"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, got {policy!r}")
        self.capacity = capacity
        self.policy = policy
        self._items: deque = deque()
        self._cond = Condition()
        self._closed = False

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def drained(self) -> bool:
        """Closed and empty: the consumer has nothing left to do."""
        with self._cond:
            return self._closed and not self._items

    def put(self, item, timeout: Optional[float] = None) -> None:
        """Enqueue ``item``, honouring the backpressure policy.

        Raises:
            QueueFullError: full queue under ``policy="reject"`` (or when a
                ``policy="block"`` wait exceeds ``timeout``).
            ServiceClosedError: the queue is (or becomes, while blocked)
                closed.
        """
        with self._cond:
            if self._closed:
                raise ServiceClosedError("request queue is closed")
            if len(self._items) >= self.capacity:
                if self.policy == "reject":
                    raise QueueFullError(
                        f"request queue full ({self.capacity} pending)"
                    )
                deadline = None if timeout is None else time.monotonic() + timeout
                while len(self._items) >= self.capacity:
                    if self._closed:
                        raise ServiceClosedError("request queue closed while blocked")
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise QueueFullError(
                                f"request queue still full after {timeout}s"
                            )
                    self._cond.wait(remaining)
                # Space freed, but the close may have landed while we
                # waited; a blocked producer must never enqueue into a
                # closed queue (its request would be stranded unresolved).
                if self._closed:
                    raise ServiceClosedError("request queue closed while blocked")
            self._items.append(item)
            self._cond.notify_all()

    def get(self, timeout: Optional[float] = None):
        """Dequeue the oldest item; ``None`` on timeout or a drained close."""
        with self._cond:
            deadline = None if timeout is None else time.monotonic() + timeout
            while not self._items:
                if self._closed:
                    return None
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                self._cond.wait(remaining)
            item = self._items.popleft()
            self._cond.notify_all()
            return item

    def get_nowait(self):
        """Dequeue without blocking; ``None`` when nothing is queued."""
        with self._cond:
            if not self._items:
                return None
            item = self._items.popleft()
            self._cond.notify_all()
            return item

    def close(self) -> list:
        """Refuse new puts and wake all waiters; return a snapshot of leftovers.

        The queued items stay gettable (the dispatcher drains them); the
        returned snapshot lets a consumer that will *not* drain (a service
        that was never started) fail the pending requests instead of
        dropping them.
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()
            return list(self._items)
