"""Per-request latency and batching metrics for the service layer.

The paper's claim is throughput under interleaved traffic; a service front
door additionally has to answer "at what latency?".  Every request carries
its enqueue timestamp, the dispatcher records the resolve-time delta here,
and :meth:`ServiceMetrics.summary` reduces the samples to the percentiles a
deployment alarms on (p50/p95/p99), alongside how well the micro-batcher
coalesced (batches dispatched, mean/max batch size) and how often
backpressure rejected work.
"""

from __future__ import annotations

from threading import Lock
from typing import Dict, List, Sequence


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of ``samples`` (0 for an empty sequence).

    ``fraction`` is in ``[0, 1]``; nearest-rank keeps the value an actually
    observed latency, which is what tail-latency reporting wants.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


class LatencyRecorder:
    """Append-only latency sample sink with percentile summaries."""

    def __init__(self) -> None:
        self._samples: List[float] = []

    def record(self, seconds: float) -> None:
        self._samples.append(seconds)

    @property
    def count(self) -> int:
        return len(self._samples)

    def summary(self) -> Dict[str, float]:
        """``count`` plus mean/p50/p95/p99/max, all in seconds."""
        samples = self._samples
        if not samples:
            return {"count": 0, "mean_s": 0.0, "p50_s": 0.0, "p95_s": 0.0,
                    "p99_s": 0.0, "max_s": 0.0}
        return {
            "count": len(samples),
            "mean_s": sum(samples) / len(samples),
            "p50_s": percentile(samples, 0.50),
            "p95_s": percentile(samples, 0.95),
            "p99_s": percentile(samples, 0.99),
            "max_s": max(samples),
        }


class ServiceMetrics:
    """Counters a running :class:`~repro.service.service.GraphService` keeps.

    Submission-side counters (``submitted``, ``rejected``) are bumped from
    many client threads and take the lock; dispatch-side counters are only
    touched by the single dispatcher thread but share the same lock so
    :meth:`summary` reads one consistent snapshot.
    """

    def __init__(self) -> None:
        self._lock = Lock()
        self.submitted: Dict[str, int] = {}
        self.rejected = 0
        self.resolved = 0
        self.failed = 0
        self.cancelled = 0
        self.batches = 0
        self.batched_requests = 0
        self.max_batch_size = 0
        self.store_batch_calls = 0
        self.group_commits = 0
        self.replica_reads: Dict[int, int] = {}
        self.replication_lag_samples = 0
        self.replication_lag_total = 0
        self.replication_lag_max = 0
        self.replica_evictions = 0
        self.analytics_runs = 0
        self.analytics_decisions: Dict[str, int] = {}
        self.analytics_dirty_total = 0
        self.analytics_dirty_max = 0
        self.analytics_cache: Dict[str, object] = {}
        self.tier_stats: Dict[str, object] = {}
        self._latency = LatencyRecorder()

    # -- submission side ------------------------------------------------ #

    def record_submit(self, kind: str) -> None:
        with self._lock:
            self.submitted[kind] = self.submitted.get(kind, 0) + 1

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    # -- dispatch side --------------------------------------------------- #

    def record_batch(self, size: int, store_calls: int) -> None:
        with self._lock:
            self.batches += 1
            self.batched_requests += size
            self.max_batch_size = max(self.max_batch_size, size)
            self.store_batch_calls += store_calls

    def record_resolved(self, latency_s: float) -> None:
        with self._lock:
            self.resolved += 1
            self._latency.record(latency_s)

    def record_failed(self, latency_s: float) -> None:
        with self._lock:
            self.failed += 1
            self._latency.record(latency_s)

    def record_cancelled(self) -> None:
        with self._lock:
            self.cancelled += 1

    def record_commit(self) -> None:
        """One durability group commit (``durability="batch"`` mode)."""
        with self._lock:
            self.group_commits += 1

    def record_replica_read(self, replica: int, lag: int) -> None:
        """One read run routed to replica ``replica``, observed ``lag`` commits
        behind the primary (for read-your-writes reads: the distance the
        barrier had to close; for ``"any"`` reads: the staleness served)."""
        with self._lock:
            self.replica_reads[replica] = self.replica_reads.get(replica, 0) + 1
            self.replication_lag_samples += 1
            self.replication_lag_total += lag
            self.replication_lag_max = max(self.replication_lag_max, lag)

    def record_evictions(self, total: int) -> None:
        """Absolute count of followers the primary evicted mid-broadcast
        (dead channels); polled from ``Primary.evictions`` at summary time."""
        with self._lock:
            self.replica_evictions = total

    def record_analytics_run(self, decision: str, dirty: int,
                             cache_stats: Dict[str, object]) -> None:
        """One analytics run served by the incremental follower.

        ``decision`` is what :meth:`refresh_analytics` did for the run
        (``"primed"`` / ``"clean"`` / ``"incremental"`` / ``"recompute"``),
        ``dirty`` how many sources the change feed had invalidated when the
        run arrived, and ``cache_stats`` the materialization cache's
        cumulative counters (the summary keeps the latest snapshot, whose
        ``hit_rate`` is the ISSUE's cache-hit-rate figure)."""
        with self._lock:
            self.analytics_runs += 1
            self.analytics_decisions[decision] = (
                self.analytics_decisions.get(decision, 0) + 1
            )
            self.analytics_dirty_total += dirty
            self.analytics_dirty_max = max(self.analytics_dirty_max, dirty)
            self.analytics_cache = dict(cache_stats)

    def record_tier_stats(self, stats: Dict[str, object]) -> None:
        """Latest hot/cold tier snapshot (hits/misses/promotions/demotions);
        polled from ``TieredStore.tier_stats()`` at summary time when the
        service fronts a tiered store."""
        with self._lock:
            self.tier_stats = dict(stats)

    # -- reporting ------------------------------------------------------- #

    def summary(self) -> Dict[str, object]:
        """One consistent snapshot of every counter plus latency percentiles."""
        with self._lock:
            mean_batch = (
                self.batched_requests / self.batches if self.batches else 0.0
            )
            return {
                "submitted": dict(self.submitted),
                "submitted_total": sum(self.submitted.values()),
                "rejected": self.rejected,
                "resolved": self.resolved,
                "failed": self.failed,
                "cancelled": self.cancelled,
                "batches": self.batches,
                "mean_batch_size": mean_batch,
                "max_batch_size": self.max_batch_size,
                "store_batch_calls": self.store_batch_calls,
                "group_commits": self.group_commits,
                "replication": {
                    "replica_reads": dict(self.replica_reads),
                    "lag_samples": self.replication_lag_samples,
                    "lag_mean": (
                        self.replication_lag_total / self.replication_lag_samples
                        if self.replication_lag_samples else 0.0
                    ),
                    "lag_max": self.replication_lag_max,
                    "evictions": self.replica_evictions,
                },
                "analytics": {
                    "runs": self.analytics_runs,
                    "decisions": dict(self.analytics_decisions),
                    "dirty_nodes_total": self.analytics_dirty_total,
                    "dirty_nodes_max": self.analytics_dirty_max,
                    "dirty_nodes_mean": (
                        self.analytics_dirty_total / self.analytics_runs
                        if self.analytics_runs else 0.0
                    ),
                    "cache": dict(self.analytics_cache),
                },
                "tiered": dict(self.tier_stats),
                "latency": self._latency.summary(),
            }
