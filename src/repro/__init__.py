"""CuckooGraph reproduction: a space-time efficient dynamic-graph store.

This package reproduces the system described in *CuckooGraph: A Scalable and
Space-Time Efficient Data Structure for Large-Scale Dynamic Graphs*
(ICDE 2025) in pure Python, together with the competitor baselines, graph
analytics tasks, synthetic datasets and database integrations its evaluation
relies on.

Quickstart::

    from repro import CuckooGraph

    graph = CuckooGraph()
    graph.insert_edge(1, 2)
    graph.insert_edge(1, 3)
    assert graph.has_edge(1, 2)
    assert sorted(graph.successors(1)) == [2, 3]
"""

from .core import (
    CuckooGraph,
    CuckooGraphConfig,
    MultiEdgeCuckooGraph,
    PAPER_CONFIG,
    ShardedCuckooGraph,
    WeightedCuckooGraph,
)
from .interfaces import DynamicGraphStore, WeightedGraphStore
from .persist import PersistentStore, recover
from .replicate import Follower, Primary, ReplicationGroup
from .service import GraphClient, GraphService
from .tiered import TieredStore

__version__ = "1.0.0"

__all__ = [
    "CuckooGraph",
    "CuckooGraphConfig",
    "DynamicGraphStore",
    "Follower",
    "GraphClient",
    "GraphService",
    "MultiEdgeCuckooGraph",
    "PAPER_CONFIG",
    "PersistentStore",
    "Primary",
    "ReplicationGroup",
    "ShardedCuckooGraph",
    "TieredStore",
    "WeightedCuckooGraph",
    "WeightedGraphStore",
    "__version__",
    "recover",
]
