"""TCP transport for replication: the log-shipping stream over a socket.

The in-process transport hands the primary and its follower two ends of a
queue; this module hands them two ends of a TCP connection, which is what
lets a replica live in another process (or another machine) and what makes
``promote()`` a real failover primitive instead of a same-process trick.

Wire format.  Every message is framed exactly like a WAL record on disk
(:data:`~repro.persist.wal.FRAME_HEADER`: 4-byte length + 4-byte CRC32 of
the payload) -- the replication stream *is* the log, so it ships in the
log's clothes.  The payload starts with a one-byte message type:

* ``MSG_RECORD`` -- a :class:`RecordShipment`: a ``<BQIQQ`` header
  (type, commit_index, segment, generation, end_offset) followed by the
  operations in the WAL op codec (:func:`~repro.persist.wal.encode_ops`).
* ``MSG_BUMP`` -- a :class:`GenerationBump`: ``<BQQ``.
* ``MSG_HELLO`` -- follower -> server greeting carrying its node id.
* ``MSG_SNAPSHOT_CHUNK`` / ``MSG_BACKFILL`` / ``MSG_ATTACHED`` -- the
  bootstrap: the server streams the primary's snapshot *file* in chunks
  (object-storage-shaped -- a remote follower never touches the primary's
  filesystem), then every already-shipped record, then the attach stamp
  (commit index, generation, per-segment offsets).
* ``MSG_PING`` / ``MSG_PONG`` -- follower-initiated heartbeat; the pong
  carries ``logged_commit_index`` so a remote replica measures real lag.
* ``MSG_DETACH`` -- graceful goodbye from the follower.

Topology.  :class:`ReplicationServer` wraps a :class:`Primary` and accepts
connections; each accepted connection becomes a
:class:`~repro.replicate.primary.ChannelSubscriber` wrapping a
:class:`_ServerChannel` (the ``send`` half of :class:`ReplicationChannel`).
:class:`RemoteFollower` is a :class:`Follower` whose constructor performs
the bootstrap handshake and then consumes a :class:`SocketChannel` (the
``receive`` half, ``notifies_on_send=True`` via a reader thread that
invokes the listener per arrival -- so ``wait_for`` barriers sleep, they
do not poll).  Together the pair plays the :class:`ReplicationTransport`
role across processes.

Concurrency rule (same as ``Primary.attach``): do not mutate or checkpoint
the primary's store while a follower is bootstrapping.  The server holds
``Primary.lock`` across the entire bootstrap (sync + pump + snapshot +
backfill + subscribe), which serialises it against ``pump`` -- but a group
commit *between* lock acquisitions is fine and simply ships through the
channel afterwards.

Failure model.  Loss is handled by re-attaching, never by repair: a dead
socket surfaces as a closed channel (the reader thread closes it, waking
any blocked barrier -- the close-notifies contract), the primary evicts
the dead subscriber mid-broadcast and keeps shipping to the rest, and a
crashed follower reconnects with a fresh store.
"""

from __future__ import annotations

import os
import queue
import socket
import struct
import tempfile
import threading
import time
import zlib
from typing import Callable, Optional, Tuple, Union

from ..core.errors import ReplicationError
from ..interfaces import DynamicGraphStore
from ..persist import FRAME_HEADER, SNAPSHOT_NAME, decode_ops, encode_frame, encode_ops
from ..persist.snapshot import load_snapshot
from .follower import DEFAULT_POLL_SLICE_S, Follower, apply_shipped_ops
from .primary import Primary
from .transport import GenerationBump, RecordShipment, ReplicationChannel

MSG_RECORD = 1
MSG_BUMP = 2
MSG_HELLO = 3
MSG_SNAPSHOT_CHUNK = 4
MSG_BACKFILL = 5
MSG_ATTACHED = 6
MSG_PING = 7
MSG_PONG = 8
MSG_DETACH = 9

_RECORD_HEAD = struct.Struct("<BQIQQ")   # type, commit_index, segment, generation, end_offset
_BUMP = struct.Struct("<BQQ")            # type, commit_index, generation
_HELLO = struct.Struct("<Bq")            # type, node_id
_ATTACHED_HEAD = struct.Struct("<BQQI")  # type, commit_index, generation, num_segments
_PONG = struct.Struct("<BQ")             # type, logged_commit_index

_PING_PAYLOAD = bytes([MSG_PING])
_DETACH_PAYLOAD = bytes([MSG_DETACH])

#: Snapshot bytes per bootstrap frame.
SNAPSHOT_CHUNK_BYTES = 64 * 1024

#: How often a server connection handler re-checks liveness while idle.
_HANDLER_POLL_S = 0.2

#: Default handshake timeout for a connecting follower (seconds).
DEFAULT_CONNECT_TIMEOUT_S = 10.0


# ---------------------------------------------------------------------- #
# Codec
# ---------------------------------------------------------------------- #

def encode_message(message) -> bytes:
    """Serialise a stream message (record or bump) into a frame payload."""
    if isinstance(message, RecordShipment):
        return _RECORD_HEAD.pack(
            MSG_RECORD, message.commit_index, message.segment,
            message.generation, message.end_offset) + encode_ops(message.ops)
    if isinstance(message, GenerationBump):
        return _BUMP.pack(MSG_BUMP, message.commit_index, message.generation)
    raise ReplicationError(f"cannot encode replication message {message!r}")


def decode_message(payload: bytes):
    """Parse a frame payload back into the dataclass that was sent."""
    kind = payload[0]
    if kind == MSG_RECORD:
        _, commit_index, segment, generation, end_offset = \
            _RECORD_HEAD.unpack_from(payload)
        return RecordShipment(
            commit_index=commit_index, segment=segment, generation=generation,
            ops=tuple(decode_ops(payload[_RECORD_HEAD.size:])),
            end_offset=end_offset)
    if kind == MSG_BUMP:
        _, commit_index, generation = _BUMP.unpack(payload)
        return GenerationBump(commit_index=commit_index, generation=generation)
    raise ReplicationError(f"unknown replication message type {kind}")


class _Idle(Exception):
    """A timed-out read that caught the socket between frames (not an error)."""


def _read_exact(sock: socket.socket, n: int, *, idle_signal: bool = False) -> bytes:
    """Read exactly ``n`` bytes or raise :class:`ReplicationError`.

    With ``idle_signal``, a timeout that lands *between* frames (zero bytes
    read so far) raises :class:`_Idle` so the caller can run its liveness
    checks; a timeout mid-frame keeps reading -- a frame, once started, is
    finished or the connection is declared dead.
    """
    buf = bytearray()
    while len(buf) < n:
        try:
            chunk = sock.recv(n - len(buf))
        except socket.timeout:
            if idle_signal and not buf:
                raise _Idle() from None
            if idle_signal:
                continue
            raise ReplicationError(
                "timed out reading from the replication peer") from None
        except OSError as exc:
            raise ReplicationError(f"replication socket died: {exc}") from None
        if not chunk:
            raise ReplicationError("replication peer closed the connection")
        buf.extend(chunk)
    return bytes(buf)


def _recv_frame(sock: socket.socket, *, idle_signal: bool = False) -> bytes:
    """Read one CRC-checked frame; raises like :func:`_read_exact`."""
    header = _read_exact(sock, FRAME_HEADER.size, idle_signal=idle_signal)
    length, crc = FRAME_HEADER.unpack(header)
    payload = _read_exact(sock, length, idle_signal=idle_signal)
    if zlib.crc32(payload) != crc:
        raise ReplicationError("replication frame failed its checksum")
    return payload


# ---------------------------------------------------------------------- #
# Channels
# ---------------------------------------------------------------------- #

class SocketChannel(ReplicationChannel):
    """Follower-side channel: a reader thread feeds an in-memory queue.

    The reader decodes each arriving frame; stream messages land in the
    queue and invoke the listener (``notifies_on_send=True``: barriers
    sleep on the arrival condition, the network wakes them), pongs route to
    the primary handle.  Any read error -- reset, EOF, checksum -- closes
    the channel, and ``close()`` notifies, so a blocked ``wait_for`` raises
    the detached error within one wake instead of sleeping out its timeout.
    """

    notifies_on_send = True

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._queue: "queue.Queue" = queue.Queue()
        self._closed = False
        self._close_lock = threading.Lock()
        self._write_lock = threading.Lock()
        self._reader: Optional[threading.Thread] = None
        # Late-bound by RemoteFollower: record/pong observers on the handle.
        self._on_record: Optional[Callable[[int], None]] = None
        self._on_pong: Optional[Callable[[int], None]] = None

    def start(self) -> None:
        """Start the reader thread (after the listener is registered)."""
        self._reader = threading.Thread(
            target=self._read_loop, name="repro-replica-reader", daemon=True)
        self._reader.start()

    def _read_loop(self) -> None:
        try:
            while not self._closed:
                payload = _recv_frame(self._sock)
                kind = payload[0]
                if kind in (MSG_RECORD, MSG_BUMP):
                    message = decode_message(payload)
                    self._queue.put(message)
                    if kind == MSG_RECORD and self._on_record is not None:
                        self._on_record(message.commit_index)
                    self._notify_listener()
                elif kind == MSG_PONG:
                    _, index = _PONG.unpack(payload)
                    if self._on_pong is not None:
                        self._on_pong(index)
                # Anything else on an attached stream is a protocol error,
                # but tolerated: unknown types are skipped, not fatal.
        except ReplicationError:
            pass
        finally:
            self.close()  # idempotent; wakes any blocked barrier

    def send(self, message) -> None:
        raise ReplicationError(
            "SocketChannel is the consumer end; only the primary ships")

    def send_payload(self, payload: bytes) -> None:
        """Write one control frame (ping, detach) up the same socket."""
        if self._closed:
            raise ReplicationError("cannot write on a closed replication channel")
        with self._write_lock:
            try:
                self._sock.sendall(encode_frame(payload))
            except OSError as exc:
                self.close()
                raise ReplicationError(
                    f"replication socket died: {exc}") from None

    def receive(self, timeout: Optional[float] = None):
        try:
            if timeout is None:
                return self._queue.get_nowait()
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def drain(self):
        messages = []
        while True:
            try:
                messages.append(self._queue.get_nowait())
            except queue.Empty:
                return messages

    def _close(self) -> None:
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._sock.close()
            except OSError:
                pass

    @property
    def closed(self) -> bool:
        return self._closed


class _ServerChannel(ReplicationChannel):
    """Primary-side channel: ``send`` writes one frame per message.

    A write failure marks the channel closed and raises
    :class:`ReplicationError` -- which is exactly what ``Primary._broadcast``
    treats as "this replica died": it evicts the subscriber and keeps
    shipping to the rest.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._closed = False
        self._write_lock = threading.Lock()

    def send(self, message) -> None:
        self.send_payload(encode_message(message))

    def send_payload(self, payload: bytes) -> None:
        if self._closed:
            raise ReplicationError("cannot ship on a closed replication channel")
        with self._write_lock:
            try:
                self._sock.sendall(encode_frame(payload))
            except OSError as exc:
                self._closed = True
                raise ReplicationError(
                    f"follower connection died: {exc}") from None

    def _close(self) -> None:
        if self._closed:
            return
        self._closed = True
        # Shutdown (not close) so the handler thread blocked in recv wakes
        # with EOF and runs its own cleanup; it owns the final close.
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass

    @property
    def closed(self) -> bool:
        return self._closed


# ---------------------------------------------------------------------- #
# Server (primary side)
# ---------------------------------------------------------------------- #

class ReplicationServer:
    """Accepts follower connections for a :class:`Primary` and serves them.

    Each connection is bootstrapped (snapshot file stream + backfill +
    attach stamp) under ``primary.lock`` -- atomically with its
    subscription, so no record can land between backfill and subscribe --
    and then answers heartbeats until the follower detaches or dies.  The
    owner keeps driving the primary exactly as before (``sync_and_pump``
    after mutations); records fan out to remote subscribers the same way
    they reach in-process followers.
    """

    def __init__(self, primary: Primary, host: str = "127.0.0.1",
                 port: int = 0):
        self._primary = primary
        self._listener = socket.create_server((host, port))
        # Closing a listening socket does not wake a thread blocked in
        # accept(); poll with a short timeout so close() is prompt.
        self._listener.settimeout(_HANDLER_POLL_S)
        self._address = self._listener.getsockname()[:2]
        self._closed = False
        self._lock = threading.Lock()
        self._conns: list = []
        self._threads: list = []
        #: Connections that completed the bootstrap handshake.
        self.attaches = 0
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-replication-accept",
            daemon=True)
        self._accept_thread.start()

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` a :class:`RemoteFollower` connects to."""
        return self._address

    @property
    def primary(self) -> Primary:
        return self._primary

    @property
    def closed(self) -> bool:
        return self._closed

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            thread = threading.Thread(
                target=self._serve, args=(conn,),
                name="repro-replication-conn", daemon=True)
            with self._lock:
                if self._closed:
                    conn.close()
                    return
                self._conns.append(conn)
                self._threads.append(thread)
            thread.start()

    def _serve(self, conn: socket.socket) -> None:
        subscriber = None
        channel = None
        try:
            conn.settimeout(DEFAULT_CONNECT_TIMEOUT_S)
            hello = _recv_frame(conn)
            if hello[0] != MSG_HELLO:
                raise ReplicationError("replication client did not say hello")
            with self._primary.lock:
                # Cursor == disk, then stream the whole prefix and subscribe
                # while still holding the lock: nothing ships in between.
                self._primary.sync_and_pump()
                self._stream_bootstrap(conn)
                channel = _ServerChannel(conn)
                subscriber = self._primary.subscribe_channel(channel)
            self.attaches += 1
            conn.settimeout(_HANDLER_POLL_S)
            while not self._closed and not channel.closed:
                try:
                    payload = _recv_frame(conn, idle_signal=True)
                except _Idle:
                    continue
                kind = payload[0]
                if kind == MSG_PING:
                    channel.send_payload(_PONG.pack(
                        MSG_PONG, self._primary.logged_commit_index))
                elif kind == MSG_DETACH:
                    break
        except (ReplicationError, OSError):
            pass
        finally:
            if subscriber is not None:
                if not self._primary.closed:
                    self._primary.detach(subscriber)
                else:
                    subscriber._disconnect()
            elif channel is not None:
                channel.close()
            try:
                conn.close()
            except OSError:
                pass
            with self._lock:
                if conn in self._conns:
                    self._conns.remove(conn)

    def _stream_bootstrap(self, conn: socket.socket) -> None:
        """Snapshot file chunks, then shipped records, then the attach stamp."""
        snapshot = self._primary.path / SNAPSHOT_NAME
        if snapshot.exists():
            with open(snapshot, "rb") as file:
                while True:
                    chunk = file.read(SNAPSHOT_CHUNK_BYTES)
                    if not chunk:
                        break
                    conn.sendall(encode_frame(
                        bytes([MSG_SNAPSHOT_CHUNK]) + chunk))
        for ops in self._primary.shipped_records():
            conn.sendall(encode_frame(bytes([MSG_BACKFILL]) + encode_ops(ops)))
        offsets = self._primary.position.offsets
        stamp = _ATTACHED_HEAD.pack(
            MSG_ATTACHED, self._primary.commit_index,
            self._primary.generation, len(offsets))
        if offsets:
            stamp += struct.pack(f"<{len(offsets)}Q", *offsets)
        conn.sendall(encode_frame(stamp))

    def close(self) -> None:
        """Stop accepting, drop every connection, join the threads.  Idempotent.

        The primary itself is left open (the server never owned it); its
        remote subscribers are detached as their handlers unwind.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            conns = list(self._conns)
            threads = list(self._threads)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        for thread in threads:
            thread.join(timeout=5.0)
        self._accept_thread.join(timeout=5.0)

    def __enter__(self) -> "ReplicationServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------- #
# Remote follower (client side)
# ---------------------------------------------------------------------- #

class RemotePrimaryHandle:
    """Follower-side stand-in for the primary across the wire.

    Quacks like :class:`Primary` as far as :class:`Follower` cares:
    ``logged_commit_index`` (the newest index the wire has advertised, via
    record headers and pong replies -- so ``lag()`` measures against what
    the primary *says* it logged) and ``detach`` (a goodbye frame, then the
    local disconnect).  ``ping`` is the heartbeat the failover manager
    drives; ``last_contact`` timestamps every proof of life.
    """

    def __init__(self, channel: SocketChannel, *, attached_index: int):
        self._channel = channel
        self._advertised = attached_index
        self._lock = threading.Lock()
        self._pong = threading.Event()
        self._last_contact = time.monotonic()

    @property
    def logged_commit_index(self) -> int:
        return self._advertised

    @property
    def last_contact(self) -> float:
        """``time.monotonic()`` of the last frame that proved the primary alive."""
        return self._last_contact

    @property
    def closed(self) -> bool:
        return self._channel.closed

    def _observe(self, index: int) -> None:
        with self._lock:
            if index > self._advertised:
                self._advertised = index
            self._last_contact = time.monotonic()

    def _observe_pong(self, index: int) -> None:
        self._observe(index)
        self._pong.set()

    def ping(self, timeout: float = 1.0) -> int:
        """Round-trip a heartbeat; return the primary's logged commit index.

        Raises :class:`ReplicationError` when the connection is closed or
        the primary does not answer within ``timeout`` -- the health signal
        an election is built on.
        """
        if self._channel.closed:
            raise ReplicationError("primary connection is closed")
        self._pong.clear()
        self._channel.send_payload(_PING_PAYLOAD)
        if not self._pong.wait(timeout):
            raise ReplicationError(
                f"primary did not answer a ping within {timeout}s")
        return self._advertised

    def detach(self, follower) -> None:
        try:
            if not self._channel.closed:
                self._channel.send_payload(_DETACH_PAYLOAD)
        except ReplicationError:
            pass  # goodbye is best-effort; the close below is what matters
        follower._disconnect()


class RemoteFollower(Follower):
    """A :class:`Follower` attached to a :class:`ReplicationServer` over TCP.

    The constructor performs the whole attach: connect, greet with
    ``node_id``, receive the snapshot as a file stream (written to a
    temporary file, loaded, deleted -- the follower never touches the
    primary's directory), apply the backfill records, take the attach
    stamp, and start the reader thread.  After that it behaves exactly like
    an in-process follower: pull-based ``poll``/``wait_for``, real
    ``lag()`` (against the primary's *advertised* logged index), the same
    ``promote()`` fencing.

    Args:
        address: The server's ``(host, port)``.
        node_id: This replica's identity in an election (lowest live id
            wins); also what the server sees in the hello.
        connect_timeout: Handshake timeout, seconds.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        store: Optional[DynamicGraphStore] = None,
        scheme: Union[str, Callable[[], DynamicGraphStore]] = "sharded",
        *,
        node_id: int = 0,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT_S,
        own_store: Optional[bool] = None,
        poll_slice_s: float = DEFAULT_POLL_SLICE_S,
    ):
        super().__init__(store, scheme, own_store=own_store,
                         poll_slice_s=poll_slice_s)
        self.node_id = node_id
        try:
            sock = socket.create_connection(tuple(address),
                                            timeout=connect_timeout)
        except OSError as exc:
            raise ReplicationError(
                f"cannot reach replication server at {address}: {exc}"
            ) from None
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            sock.settimeout(connect_timeout)
            sock.sendall(encode_frame(_HELLO.pack(MSG_HELLO, node_id)))
            commit_index, generation, offsets = self._bootstrap(sock)
        except Exception:
            sock.close()
            raise
        sock.settimeout(None)
        channel = SocketChannel(sock)
        handle = RemotePrimaryHandle(channel, attached_index=commit_index)
        channel._on_record = handle._observe
        channel._on_pong = handle._observe_pong
        self._connect(handle, channel, commit_index=commit_index,
                      generation=generation, offsets=offsets)
        channel.start()  # reader only runs once the listener is registered

    def _bootstrap(self, sock: socket.socket) -> Tuple[int, int, tuple]:
        """Consume the bootstrap stream; return the attach stamp."""
        snapshot_file = None
        snapshot_path = None

        def finalize_snapshot() -> None:
            nonlocal snapshot_file
            if snapshot_file is None:
                return
            snapshot_file.close()
            snapshot_file = None
            try:
                load_snapshot(snapshot_path, self._store)
            finally:
                os.unlink(snapshot_path)

        try:
            while True:
                payload = _recv_frame(sock)
                kind = payload[0]
                if kind == MSG_SNAPSHOT_CHUNK:
                    if snapshot_file is None:
                        fd, snapshot_path = tempfile.mkstemp(
                            prefix="repro-bootstrap-", suffix=".snapshot")
                        snapshot_file = os.fdopen(fd, "wb")
                    snapshot_file.write(payload[1:])
                elif kind == MSG_BACKFILL:
                    finalize_snapshot()
                    apply_shipped_ops(self._store, decode_ops(payload[1:]))
                elif kind == MSG_ATTACHED:
                    finalize_snapshot()
                    _, commit_index, generation, segments = \
                        _ATTACHED_HEAD.unpack_from(payload)
                    offsets: tuple = ()
                    if segments:
                        offsets = struct.unpack_from(
                            f"<{segments}Q", payload, _ATTACHED_HEAD.size)
                    return commit_index, generation, offsets
                else:
                    raise ReplicationError(
                        f"unexpected message type {kind} during bootstrap")
        finally:
            if snapshot_file is not None:
                snapshot_file.close()
                os.unlink(snapshot_path)

    def ping(self, timeout: float = 1.0) -> int:
        """Heartbeat the primary through this follower's connection."""
        if self._primary is None:
            raise ReplicationError("follower is detached")
        return self._primary.ping(timeout)

    @property
    def last_contact(self) -> Optional[float]:
        """When the primary last proved itself alive (``None`` if detached)."""
        if self._primary is None:
            return None
        return self._primary.last_contact
