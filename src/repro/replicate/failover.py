"""Automatic failover: heartbeats, a lease, an election, a promotion.

The mechanism was finished two PRs ago -- ``Follower.promote()`` already
turns a caught-up replica into a standalone writable store whose first
checkpoint is stamped one generation past everything the old primary ever
wrote, so the deposed leader's segments are provably stale (the fence).
What was missing is the *policy*: deciding that the primary is dead and
picking who promotes.  :class:`FailoverManager` is that policy, and it is
deliberately simple:

* **Heartbeats.**  Each registered member is probed on ``heartbeat()`` --
  a :class:`~repro.replicate.net.RemoteFollower` round-trips a ping over
  its own replication socket (the health check travels the same wire the
  data does), an in-process follower checks its attachment.  Every success
  refreshes the lease.
* **Lease.**  The primary is presumed alive for ``lease_s`` seconds after
  the last successful probe *by any member*.  Only when no member has
  reached it for a full lease does the manager declare it dead -- one slow
  heartbeat does not trigger an election, one reachable member vetoes it.
* **Election.**  The lowest-id live member wins.  No quorum, no terms:
  the manager is a single decision point (run it where the clients are),
  and the generation fence -- not the election -- is what makes a deposed
  primary harmless.  Determinism is the virtue: every test and every
  operator can predict the winner.
* **Promotion + rewire.**  The winner drains what already arrived,
  records its exact :class:`~repro.persist.wal.WalPosition` (the
  byte-identity witness: ``recover(old_dir, upto=position)`` must equal
  the promoted store), promotes, and optionally becomes a new
  :class:`Primary` -- serving over TCP again when ``listen`` is given.
  Losing members close and re-attach fresh through their ``respawn``
  callable: loss is handled by re-attaching, never by repair.

The manager manages followers co-located in its process (they may be
*remote* followers -- their stores are local, their primary is not).  A
deposed primary that comes back simply finds its followers gone and its
segments fenced; the chaos tests exercise exactly that.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union

from ..core.errors import ReplicationError
from ..persist import PersistentStore, WalPosition
from .follower import Follower
from .net import ReplicationServer
from .primary import Primary

#: Default lease: how long the primary stays presumed-alive after the last
#: successful probe by any member (seconds).
DEFAULT_LEASE_S = 1.0


@dataclass
class _Member:
    follower: Follower
    probe: Callable[[], None]
    respawn: Optional[Callable[[Primary, Optional[ReplicationServer]],
                               Follower]]
    last_contact: float = 0.0


@dataclass
class Failover:
    """What an election produced.

    ``position`` is the winner's exact per-segment cut at promotion time:
    ``recover(copy_of_old_primary_dir, upto=position)`` rebuilds byte-for-
    byte the state the new primary started from.
    """

    node_id: int
    store: PersistentStore
    position: WalPosition
    primary: Optional[Primary] = None
    server: Optional[ReplicationServer] = None
    followers: Dict[int, Follower] = field(default_factory=dict)


class FailoverManager:
    """Heartbeat-driven, lease-based election over registered followers.

    Args:
        lease_s: Seconds of total unreachability before an election fires.
        clock: Monotonic time source; injectable so tests expire the lease
            without sleeping through it.
    """

    def __init__(self, lease_s: float = DEFAULT_LEASE_S,
                 clock: Callable[[], float] = time.monotonic):
        if lease_s <= 0:
            raise ValueError(f"lease_s must be > 0, got {lease_s}")
        self._lease_s = lease_s
        self._clock = clock
        self._members: Dict[int, _Member] = {}
        self._last_contact = clock()
        self._lock = threading.RLock()
        self._monitor: Optional[threading.Thread] = None
        self._stop = threading.Event()
        #: Elections performed.
        self.failovers = 0

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #

    def register(
        self,
        node_id: int,
        follower: Follower,
        probe: Optional[Callable[[], None]] = None,
        respawn: Optional[Callable[[Primary, Optional[ReplicationServer]],
                                   Follower]] = None,
    ) -> None:
        """Add ``follower`` to the pool under ``node_id``.

        ``probe`` raises when the primary is unreachable through this
        member; the default pings remote followers and checks attachment
        on in-process ones.  ``respawn(primary, server)`` builds this
        member's fresh replacement follower after a failover rewire (a
        member without one is closed and dropped instead).
        """
        with self._lock:
            if node_id in self._members:
                raise ReplicationError(
                    f"node id {node_id} is already registered")
            self._members[node_id] = _Member(
                follower=follower,
                probe=probe or self._default_probe(follower),
                respawn=respawn,
                last_contact=self._clock(),
            )

    def _default_probe(self, follower: Follower) -> Callable[[], None]:
        timeout = max(0.1, min(1.0, self._lease_s / 2))

        def probe() -> None:
            ping = getattr(follower, "ping", None)
            if callable(ping):
                ping(timeout=timeout)  # raises when the primary is gone
                return
            if not follower.attached:
                raise ReplicationError("follower is detached")
            primary = follower._primary
            if primary is None or primary.closed:
                raise ReplicationError("primary is closed")

        return probe

    @property
    def members(self) -> Tuple[int, ...]:
        with self._lock:
            return tuple(sorted(self._members))

    @property
    def lease_s(self) -> float:
        return self._lease_s

    # ------------------------------------------------------------------ #
    # Health
    # ------------------------------------------------------------------ #

    def heartbeat(self) -> Dict[int, bool]:
        """Probe every member; refresh the lease on any success."""
        results: Dict[int, bool] = {}
        with self._lock:
            members = list(self._members.items())
        now = self._clock()
        for node_id, member in members:
            if member.follower.closed:
                results[node_id] = False
                continue
            try:
                member.probe()
            except Exception:
                results[node_id] = False
            else:
                results[node_id] = True
                member.last_contact = now
                with self._lock:
                    if now > self._last_contact:
                        self._last_contact = now
        return results

    @property
    def lease_expired(self) -> bool:
        """No member has reached the primary for a full lease."""
        return self._clock() - self._last_contact > self._lease_s

    def unreachable_for(self) -> float:
        """Seconds since *any* member last reached the primary."""
        return self._clock() - self._last_contact

    # ------------------------------------------------------------------ #
    # Election
    # ------------------------------------------------------------------ #

    def maybe_failover(self, **kwargs) -> Optional[Failover]:
        """One monitor tick: heartbeat, then elect iff the lease expired."""
        self.heartbeat()
        if not self.lease_expired:
            return None
        return self.failover(**kwargs)

    def failover(
        self,
        path: Optional[Union[str, Path]] = None,
        *,
        rewire: bool = True,
        listen: Optional[Tuple[str, int]] = None,
        sync_on_commit: bool = True,
    ) -> Failover:
        """Elect the lowest-id live member and promote it.

        The winner drains its queue (everything that arrived before the
        primary died is applied -- nothing acknowledged-and-shipped is
        lost), promotes through the generation fence, and becomes the new
        write side.  With ``rewire`` the losing members close and their
        ``respawn`` callables build fresh followers attached to the new
        primary; with ``listen`` the new primary serves over TCP at that
        ``(host, port)``.  The manager's membership and lease reset to the
        new topology.
        """
        with self._lock:
            live = {nid: m for nid, m in self._members.items()
                    if not m.follower.closed}
            if not live:
                raise ReplicationError(
                    "cannot fail over: no live follower to elect")
            winner_id = min(live)
            winner = live[winner_id]
            winner.follower.poll()  # drain: take everything that arrived
            position = winner.follower.position
            store = winner.follower.promote(path,
                                            sync_on_commit=sync_on_commit)
            self.failovers += 1
            result = Failover(node_id=winner_id, store=store,
                              position=position)
            if rewire or listen is not None:
                result.primary = Primary(store)
                if listen is not None:
                    host, port = listen
                    result.server = ReplicationServer(result.primary,
                                                      host, port)
            survivors: Dict[int, _Member] = {}
            for node_id, member in live.items():
                if node_id == winner_id:
                    continue
                member.follower.close()
                if rewire and result.primary is not None \
                        and member.respawn is not None:
                    fresh = member.respawn(result.primary, result.server)
                    result.followers[node_id] = fresh
                    survivors[node_id] = _Member(
                        follower=fresh,
                        probe=self._default_probe(fresh),
                        respawn=member.respawn,
                        last_contact=self._clock(),
                    )
            self._members = survivors
            self._last_contact = self._clock()  # fresh lease, new primary
            return result

    # ------------------------------------------------------------------ #
    # Optional monitor thread
    # ------------------------------------------------------------------ #

    def run(
        self,
        interval_s: float = 0.25,
        on_failover: Optional[Callable[[Failover], None]] = None,
        **failover_kwargs,
    ) -> threading.Thread:
        """Start a daemon thread ticking :meth:`maybe_failover`.

        Stops itself after performing one failover (the topology changed;
        decide anew whether to keep monitoring) or when :meth:`stop` is
        called.  Returns the thread.
        """
        if self._monitor is not None and self._monitor.is_alive():
            raise ReplicationError("failover monitor is already running")
        self._stop.clear()

        def tick() -> None:
            while not self._stop.wait(interval_s):
                result = self.maybe_failover(**failover_kwargs)
                if result is not None:
                    if on_failover is not None:
                        on_failover(result)
                    return

        self._monitor = threading.Thread(
            target=tick, name="repro-failover-monitor", daemon=True)
        self._monitor.start()
        return self._monitor

    def stop(self) -> None:
        """Stop the monitor thread (idempotent)."""
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
            self._monitor = None
