"""The wire between a replication primary and its followers.

Log shipping needs surprisingly little from its transport: the primary
fans each message out to every attached follower, a follower consumes its
own totally ordered stream, and loss is handled by re-attaching (the
primary backfills from disk).  :class:`ReplicationTransport` is that seam:
``connect()`` yields a :class:`ReplicationChannel` -- ``send`` on the
primary side, ``receive``/``drain`` on the follower side -- and the
in-process implementation backs each channel with a plain queue.  A socket
transport plugs in here later: the messages are flat, ``struct``-packable
dataclasses (operation tuples, integers, no object graphs), so serialising
them is the WAL encoder's job all over again.

Message vocabulary:

* :class:`RecordShipment` -- one WAL group-commit record: its global
  ``commit_index`` in the primary's ship order, the segment it came from,
  the segment's generation, the decoded operations, and the absolute byte
  offset just past the record (what lets a follower report an exact
  :class:`~repro.persist.wal.WalPosition` for point-in-time recovery).
* :class:`GenerationBump` -- the primary checkpointed: segments were folded
  into a snapshot and truncated.  Everything the snapshot folded was
  shipped *before* this message (the compaction hook guarantees it), so a
  follower's store state is untouched; only its position bookkeeping
  resets to the new generation's empty segments.
"""

from __future__ import annotations

import queue
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.errors import ReplicationError


@dataclass(frozen=True)
class RecordShipment:
    """One shipped WAL record (one group commit on the primary)."""

    commit_index: int
    segment: int
    generation: int
    ops: Tuple[tuple, ...]
    end_offset: int


@dataclass(frozen=True)
class GenerationBump:
    """The primary compacted: cursors reset to ``generation``'s fresh segments."""

    commit_index: int
    generation: int


class ReplicationChannel:
    """One primary-to-follower pipe (single producer, single consumer).

    A channel *may* support arrival notification: implementations that set
    :attr:`notifies_on_send` and call :meth:`_notify_listener` after each
    enqueued message let a blocked consumer (``Follower.wait_for``) sleep on
    a condition variable instead of polling.  Channels that do not notify
    still work -- the consumer falls back to short poll slices.
    """

    #: Whether :meth:`send` reliably invokes the registered listener.
    notifies_on_send = False

    def set_listener(self, callback) -> None:
        """Register a callable invoked (on the sender's thread) per send."""
        self._listener = callback

    def _notify_listener(self) -> None:
        listener = getattr(self, "_listener", None)
        if listener is not None:
            listener()

    def send(self, message) -> None:
        raise NotImplementedError

    def receive(self, timeout: Optional[float] = None):
        """Next message, blocking up to ``timeout``; ``None`` when dry."""
        raise NotImplementedError

    def drain(self) -> List[object]:
        """Every message currently queued, without blocking."""
        raise NotImplementedError

    def close(self) -> None:
        """Close the channel, then wake the registered listener.

        The notification is load-bearing: a consumer blocked in
        ``Follower.wait_for`` sleeps on the arrival condition this listener
        feeds, and a transport dying underneath it (a socket reset, a
        server shutdown) does not go through ``Follower._disconnect`` -- so
        without this wake-up the barrier would sleep out its entire timeout
        against a channel that can never deliver.  Subclasses implement
        :meth:`_close` (idempotent) and inherit the notification.
        """
        self._close()
        self._notify_listener()

    def _close(self) -> None:
        """Release the transport resources (idempotent); see :meth:`close`."""
        raise NotImplementedError

    @property
    def closed(self) -> bool:
        raise NotImplementedError


class ReplicationTransport:
    """Factory for channels; one per attached follower."""

    def connect(self) -> ReplicationChannel:
        raise NotImplementedError


class InProcessChannel(ReplicationChannel):
    """Queue-backed channel for followers living in the primary's process."""

    notifies_on_send = True

    def __init__(self, capacity: int = 0):
        self._queue: "queue.Queue" = queue.Queue(maxsize=capacity)
        self._closed = False

    def send(self, message) -> None:
        if self._closed:
            raise ReplicationError("cannot ship on a closed replication channel")
        self._queue.put(message)
        self._notify_listener()

    def receive(self, timeout: Optional[float] = None):
        try:
            if timeout is None:
                return self._queue.get_nowait()
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def drain(self) -> List[object]:
        messages: List[object] = []
        while True:
            try:
                messages.append(self._queue.get_nowait())
            except queue.Empty:
                return messages

    def _close(self) -> None:
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed


class InProcessTransport(ReplicationTransport):
    """In-process queue transport (the default; a socket transport's stand-in).

    ``capacity`` bounds each follower's in-flight queue; 0 means unbounded,
    which is the right default for an in-process pipe the primary also
    drains synchronously during compaction.
    """

    def __init__(self, capacity: int = 0):
        self.capacity = capacity

    def connect(self) -> InProcessChannel:
        return InProcessChannel(capacity=self.capacity)
