"""One primary, N followers: the deployment unit the service layer drives.

:class:`ReplicationGroup` bundles the wiring every replicated deployment
repeats -- build a :class:`~repro.replicate.Primary` over the durable
store, spawn one empty replica store per follower (same scheme as the
primary's wrapped structure, via ``spawn_empty``), attach them all -- and
adds the two read-side policies the service exposes:

* ``"read_your_writes"`` -- before a read is served, flush + pump the
  primary and run the follower's :meth:`~repro.replicate.Follower.wait_for`
  barrier to the primary's commit index, so the replica observes every
  mutation dispatched before the read.
* ``"any"`` -- pump what is already durable and apply whatever has
  arrived; the replica may trail the primary (buffered commits are not
  forced out), and the measured lag is reported per read.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..core.errors import ReplicationError
from ..interfaces import DynamicGraphStore
from ..persist.store import PersistentStore
from .follower import Follower
from .primary import Primary
from .transport import ReplicationTransport

#: Read freshness policies a group (and the service layer) understands.
FRESHNESS_POLICIES = ("any", "read_your_writes")


class ReplicationGroup:
    """A primary and its attached read replicas, with read routing."""

    def __init__(
        self,
        store: PersistentStore,
        replicas: int = 1,
        *,
        transport: Optional[ReplicationTransport] = None,
        follower_factory: Optional[Callable[[], DynamicGraphStore]] = None,
        analytics: bool = False,
        analytics_kwargs: Optional[dict] = None,
    ):
        if analytics:
            if replicas < 0:
                raise ReplicationError(f"replicas must be >= 0, got {replicas}")
        elif replicas < 1:
            raise ReplicationError(f"replicas must be >= 1, got {replicas}")
        if analytics_kwargs and not analytics:
            raise ReplicationError("analytics_kwargs given without analytics=True")
        self._next_replica = 0
        self._closed = False
        self.primary = Primary(store, transport=transport)
        factory = follower_factory or store.store.spawn_empty
        self.followers: List[Follower] = []
        #: The delta-maintained analytics replica (``None`` unless
        #: ``analytics=True``).  It rides the same change feed as the plain
        #: followers but is never in the round-robin read rotation: the
        #: service routes analytics runs to it explicitly.
        self.analytics_follower = None
        try:
            for _ in range(replicas):
                follower = Follower(store=factory(), own_store=True)
                self.primary.attach(follower)
                self.followers.append(follower)
            if analytics:
                # Imported here: repro.analytics imports this package.
                from ..analytics.incremental import AnalyticsFollower

                self.analytics_follower = AnalyticsFollower(
                    store=factory(), own_store=True, **(analytics_kwargs or {})
                )
                self.primary.attach(self.analytics_follower)
        except BaseException:
            self.close()
            raise

    @property
    def replicas(self) -> int:
        return len(self.followers)

    @property
    def closed(self) -> bool:
        return self._closed

    def next_follower(self) -> Tuple[Follower, int]:
        """Round-robin pick of the replica that serves the next read."""
        if not self.followers:
            raise ReplicationError(
                "no read replicas in this group (analytics-only); "
                "serve reads from the primary"
            )
        index = self._next_replica
        self._next_replica = (index + 1) % len(self.followers)
        return self.followers[index], index

    def advance(self) -> int:
        """Ship newly committed records and let every replica apply them.

        The write-path counterpart of :meth:`refresh`: the service calls it
        once per dispatched mutation run, so follower queues drain at the
        pace of the traffic instead of accumulating the whole shipped
        history between reads.  Returns the records shipped.
        """
        shipped = self.primary.pump()
        if shipped:
            for follower in self.followers:
                follower.poll()
            if self.analytics_follower is not None:
                self.analytics_follower.poll()
        return shipped

    def refresh(self, follower: Follower, freshness: str = "read_your_writes") -> int:
        """Bring ``follower`` up to the chosen freshness; return its lag.

        ``"read_your_writes"`` flushes buffered commits, pumps and runs the
        barrier to the primary's commit index (returned lag is the distance
        *closed* by the barrier -- how far the replica was trailing when
        the read arrived).  ``"any"`` pumps only what is already flushed
        and applies what has arrived, returning the remaining lag.
        """
        if freshness not in FRESHNESS_POLICIES:
            raise ReplicationError(
                f"freshness must be one of {FRESHNESS_POLICIES}, got {freshness!r}"
            )
        if freshness == "read_your_writes":
            self.primary.sync_and_pump()
            behind = follower.lag()
            follower.wait_for(self.primary.commit_index)
            return behind
        self.primary.pump()
        follower.poll()
        # Honest staleness: count commits the log holds that the replica
        # cannot have, including appends still buffered behind an fsync.
        return max(0, self.primary.logged_commit_index - follower.commit_index)

    def close(self) -> None:
        """Close followers (and their spawned stores) and the primary.

        The primary's *wrapped store* is left open -- whoever constructed
        it (the service, a test) owns and closes it.  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        for follower in self.followers:
            follower.close()
        if self.analytics_follower is not None:
            self.analytics_follower.close()
        self.primary.close()

    def __enter__(self) -> "ReplicationGroup":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
