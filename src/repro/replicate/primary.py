"""The replication primary: tails its own WAL and ships committed records.

The single-writer story stays exactly what PR 4 made it: one
:class:`~repro.persist.PersistentStore` owns the directory, appends every
group commit to the log, and holds the advisory lock.  :class:`Primary`
adds no second writer -- it *tails* the same segments read-only with the
incremental reader (:func:`~repro.persist.wal.read_wal_records` with
``from_offset``), assigns each newly committed record a global, monotonic
**commit index** in ship order, and fans it out to every attached follower
over a pluggable transport.  Per-shard segments are tailed round-robin in
segment order; because operations on a source node always land in that
node's own segment, any interleave the tailer picks is a consistent order.

Two invariants make the stream lossless:

* **Attach is backfill + subscribe.**  ``attach`` first pumps the log to
  its current end (so the cursor and the disk agree), then replays the
  directory -- snapshot plus every shipped record -- straight into the
  follower's store, stamps it with the current commit index and position,
  and only then connects its channel.  A follower that crashed and lost
  its state simply re-attaches with a fresh store.
* **Compaction cannot outrun the tailer.**  The primary subscribes to the
  store's :class:`~repro.persist.CompactionPolicy`; the pre-truncation
  :class:`~repro.persist.CompactionEvent` makes it flush and ship
  everything up to the reported offsets *before* the checkpoint folds
  those records into the snapshot and truncates the segments.  The
  generation bump the tailer then observes is a clean cursor reset, which
  it forwards to followers as a :class:`~repro.replicate.transport.GenerationBump`.

``pump`` is explicit and synchronous: call it after mutations (the service
layer pumps once per dispatched mutation run), not from a second thread --
a record appended but then compensated away by a failed apply must never
be shipped, which is guaranteed exactly when pumping happens between store
calls, not concurrently with them.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

from ..core.errors import ReplicationError
from ..persist import WAL_HEADER_SIZE, WalPosition, load_snapshot, read_wal_records
from ..persist.snapshot import CompactionEvent
from ..persist.store import SNAPSHOT_NAME, PersistentStore
from .follower import apply_shipped_ops
from .transport import (
    GenerationBump,
    InProcessTransport,
    RecordShipment,
    ReplicationTransport,
)


class Primary:
    """Log-shipping tailer over a live :class:`PersistentStore`.

    Args:
        store: The write side.  Must be a :class:`PersistentStore` -- the
            WAL is the replication stream, so only a write-ahead-logged
            store can be a primary.
        transport: Channel factory; defaults to the in-process queue
            transport.  This is the seam where a socket transport plugs in.
    """

    def __init__(self, store: PersistentStore,
                 transport: Optional[ReplicationTransport] = None):
        if not isinstance(store, PersistentStore):
            raise ReplicationError(
                f"a replication primary needs a PersistentStore (the WAL is "
                f"the replication stream), got {type(store).__name__}"
            )
        self._store = store
        self._transport = transport or InProcessTransport()
        self._segment_paths = store.segment_paths
        self._offsets: List[int] = [WAL_HEADER_SIZE] * store.segments
        self._generation = store.generation
        self._followers: List[object] = []  # Follower instances, fan-out order
        self._closed = False
        self._lock = threading.RLock()
        #: Group-commit records shipped so far, == the newest commit index.
        self.commit_index = 0
        #: pump() invocations that shipped at least one record.
        self.pumps = 0
        #: Followers evicted mid-broadcast because their channel died.
        self.evictions = 0
        #: ``store.commits`` as of the last pump, for logged_commit_index.
        self._commits_at_pump = store.commits
        store.compaction_policy.subscribe(self._before_compaction)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def store(self) -> PersistentStore:
        return self._store

    @property
    def path(self) -> Path:
        return self._store.path

    @property
    def generation(self) -> int:
        """Checkpoint generation the tail cursor is at."""
        return self._generation

    @property
    def position(self) -> WalPosition:
        """Exact per-segment cut of everything shipped so far."""
        return WalPosition(generation=self._generation,
                           offsets=tuple(self._offsets))

    @property
    def logged_commit_index(self) -> int:
        """Commit index the *log* has reached, shipped or not.

        ``commit_index`` counts shipped records; group commits the store
        has logged since the last pump (including buffered appends an
        unsynced store has not flushed yet) are ahead of the stream.  The
        difference is the honest replication lag of a ``freshness="any"``
        read: commits acknowledged to writers that a replica cannot have.
        """
        return self.commit_index + max(0, self._store.commits - self._commits_at_pump)

    @property
    def followers(self) -> Tuple[object, ...]:
        return tuple(self._followers)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def lock(self) -> threading.RLock:
        """Re-entrant lock serialising membership and shipping.

        Every public mutator takes it; a network server's accept thread
        takes it across an entire bootstrap (sync + pump + snapshot stream
        + subscribe) so no record can slip between backfill and subscribe.
        """
        return self._lock

    # ------------------------------------------------------------------ #
    # Shipping
    # ------------------------------------------------------------------ #

    def _broadcast(self, message) -> None:
        for follower in list(self._followers):
            channel = follower._channel
            if channel is None or channel.closed:
                # Died without detaching: evict with the *full* detach so
                # the follower also learns it is orphaned (otherwise its
                # lag() keeps measuring against a primary that no longer
                # ships to it, and its close() later detaches a primary
                # that already forgot it).
                self.evictions += 1
                self.detach(follower)
                continue
            try:
                channel.send(message)
            except Exception:
                # One dead replica must not abort fan-out to the rest (nor
                # propagate out of pump() with commit_index already
                # advanced): evict it and keep shipping.
                self.evictions += 1
                self.detach(follower)

    def _bump_generation(self, generation: int) -> None:
        self._generation = generation
        self._offsets = [WAL_HEADER_SIZE] * len(self._offsets)
        self._broadcast(GenerationBump(commit_index=self.commit_index,
                                       generation=generation))

    def pump(self) -> int:
        """Ship every record committed (flushed) since the last pump.

        Returns the number of records shipped.  Only *complete, on-disk*
        records travel: a buffered append the store has not flushed yet is
        invisible (call the store's ``sync()`` first, or run the service's
        group-commit durability which does), and a torn flush tail is left
        for the next pump, exactly the way recovery would leave it.
        """
        with self._lock:
            return self._pump_locked()

    def _pump_locked(self) -> int:
        if self._closed:
            raise ReplicationError("primary is closed")
        shipped = 0
        sizes = self._store.wal_segment_sizes()
        # Cheap in-memory gate for the read-heavy case: at the store's own
        # generation, a segment whose cursor sits exactly at its
        # (buffered-inclusive) end has neither new records nor a truncation
        # to observe -- skip the file I/O.  After a checkpoint the generation
        # guard keeps reading until the bump is handled, even if later
        # appends bring the size back to exactly the stale cursor value.
        same_generation = self._generation == self._store.generation
        for index, segment in enumerate(self._segment_paths):
            if same_generation and (
                    self._offsets[index] == sizes[index] or
                    (sizes[index] == 0 and self._offsets[index] == WAL_HEADER_SIZE)):
                continue
            generation, records, valid_length = read_wal_records(
                segment, from_offset=self._offsets[index],
                expected_generation=self._generation)
            if generation is None:
                continue  # never appended to (or torn at create): nothing yet
            if generation != self._generation:
                if generation < self._generation:
                    # Stale pre-snapshot segment (healed by the next append);
                    # its records are folded into the snapshot already.
                    continue
                # The store checkpointed: everything older was shipped by the
                # pre-truncation hook, so this is a pure cursor reset.
                self._bump_generation(generation)
                generation, records, valid_length = read_wal_records(
                    segment, from_offset=WAL_HEADER_SIZE,
                    expected_generation=self._generation)
            for ops, end_offset in records:
                self.commit_index += 1
                self._offsets[index] = end_offset
                self._broadcast(RecordShipment(
                    commit_index=self.commit_index,
                    segment=index,
                    generation=generation,
                    ops=tuple(ops),
                    end_offset=end_offset,
                ))
                shipped += 1
            if valid_length > self._offsets[index]:
                self._offsets[index] = valid_length
        if shipped:
            self.pumps += 1
        if self._log_end_reached():
            # Only a pump that truly consumed the log (no buffered tail
            # pending behind an fsync) may declare the stream caught up;
            # otherwise logged_commit_index keeps counting the gap.
            self._commits_at_pump = self._store.commits
        return shipped

    def _log_end_reached(self) -> bool:
        return all(
            size == 0 or offset >= size
            for offset, size in zip(self._offsets,
                                    self._store.wal_segment_sizes())
        )

    def sync_and_pump(self) -> int:
        """Flush the store's buffered commits, then ship them."""
        with self._lock:
            self._store.sync()
            return self._pump_locked()

    def _before_compaction(self, event: CompactionEvent) -> None:
        """Pre-truncation hook: drain the log before the checkpoint folds it."""
        with self._lock:
            if self._closed:
                return
            # The event's offsets include buffered appends; flush so the tailer
            # can read them, then ship everything.  After this, truncation only
            # removes records every follower channel already carries.
            self._store.sync()
            self._pump_locked()

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #

    def attach(self, follower) -> None:
        """Backfill ``follower`` to the current commit index and subscribe it.

        The follower's store must be empty: backfill replays the primary
        directory (snapshot + every shipped record) into it, so a restarted
        follower re-attaches with a fresh store and converges.  Records
        committed after this call reach it through its channel.
        """
        with self._lock:
            if self._closed:
                raise ReplicationError("primary is closed")
            if follower in self._followers:
                raise ReplicationError("follower is already attached")
            self._store.sync()
            self._pump_locked()  # cursor == disk: backfill is exactly the stream
            self._backfill(follower.store)
            channel = self._transport.connect()
            follower._connect(self, channel,
                              commit_index=self.commit_index,
                              generation=self._generation,
                              offsets=tuple(self._offsets))
            self._followers.append(follower)

    def subscribe_channel(self, channel) -> "ChannelSubscriber":
        """Subscribe a bare channel to the fan-out (no local backfill).

        The network server uses this after streaming snapshot + backfill
        itself: the remote follower's store lives in another process, so
        membership here is just the channel wrapped in a minimal proxy.
        Call under :attr:`lock` together with the bootstrap so no record
        lands between backfill and subscription.  Returns the proxy to pass
        to :meth:`detach`.
        """
        with self._lock:
            if self._closed:
                raise ReplicationError("primary is closed")
            subscriber = ChannelSubscriber(channel)
            self._followers.append(subscriber)
            return subscriber

    def detach(self, follower) -> None:
        """Stop shipping to ``follower`` (idempotent)."""
        with self._lock:
            if follower in self._followers:
                self._followers.remove(follower)
        follower._disconnect()

    def _backfill(self, store) -> None:
        """Replay snapshot + shipped records into an empty follower store.

        Deliberately not :func:`~repro.persist.replay_into`: the follower
        may be *any* scheme (its own segmentation is irrelevant -- it never
        logs), so only the logical stream is replayed.
        """
        if store.num_edges != 0:
            raise ReplicationError(
                "a follower must attach with an empty store; backfill "
                "replays the primary's history into it"
            )
        load_snapshot(self.path / SNAPSHOT_NAME, store)
        for ops in self.shipped_records():
            apply_shipped_ops(store, ops)

    def shipped_records(self) -> Iterator[Tuple[tuple, ...]]:
        """Ops of every already-shipped record, in backfill (segment) order.

        This is the record half of a bootstrap: snapshot first (the file at
        ``path / SNAPSHOT_NAME``), then these, and the result equals the
        shipped stream at the current cursor.  The network server streams
        both over the wire instead of applying them to a local store.
        """
        for index, segment in enumerate(self._segment_paths):
            generation, records, _ = read_wal_records(segment)
            if generation is None or generation < self._generation:
                continue
            limit = self._offsets[index]
            for ops, end_offset in records:
                if end_offset > limit:
                    break  # committed after the cursor; ships via the channel
                yield tuple(ops)

    def close(self) -> None:
        """Detach every follower and stop tailing.  Idempotent.

        The wrapped store is left untouched (the primary never owned it);
        followers keep their stores and can still be promoted.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._store.compaction_policy.unsubscribe(self._before_compaction)
            for follower in list(self._followers):
                self.detach(follower)

    def __enter__(self) -> "Primary":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ChannelSubscriber:
    """Minimal membership proxy for a bare channel.

    Quacks like a follower as far as :meth:`Primary._broadcast` and
    :meth:`Primary.detach` care: exposes ``_channel`` and closes it on
    ``_disconnect``.  The real follower state lives across the wire.
    """

    def __init__(self, channel):
        self._channel = channel

    def _disconnect(self) -> None:
        channel = self._channel
        if channel is not None and not channel.closed:
            channel.close()
