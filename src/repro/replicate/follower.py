"""Read replicas: apply the shipped log, expose a commit index, promote.

A :class:`Follower` is the read half of the replication pair: it holds a
store of **any** registered scheme (it never logs -- the primary's WAL is
the single source of truth), applies :class:`RecordShipment` messages in
ship order, and exposes

* ``commit_index`` -- monotonic count of group commits applied, directly
  comparable with the primary's;
* ``position`` -- the exact per-segment byte cut
  (:class:`~repro.persist.wal.WalPosition`) its state corresponds to,
  which is precisely what ``recover(path, upto=position)`` replays, so a
  follower's observed state is always point-in-time recoverable from the
  primary's directory;
* ``wait_for(index)`` -- the read-your-writes barrier: apply queued
  shipments until the given commit index is reached (clients that saw a
  mutation acknowledged at index ``i`` read a follower only after
  ``wait_for(i)``);
* ``promote()`` -- failover: wrap the follower's store in a fresh,
  standalone writable :class:`~repro.persist.PersistentStore` whose first
  checkpoint is stamped **one generation past** everything the follower
  ever saw, so WAL segments from the deposed primary's era are provably
  stale and recovery rejects them instead of double-applying history.

Followers are deliberately pull-based (``poll``/``wait_for`` drain the
channel on the caller's thread): replication lag is then a real, observable
quantity -- the service layer measures it per read -- rather than an
artifact of a background thread's scheduling.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Callable, List, Optional, Union

from ..core.errors import ReplicationError
from ..interfaces import DynamicGraphStore
from ..persist import INSERT_WEIGHTED, WAL_HEADER_SIZE, WalPosition
from ..persist.store import (
    PersistentStore,
    _resolve_factory,
    apply_op,
)
from .transport import GenerationBump, RecordShipment, ReplicationChannel

#: How long ``wait_for`` waits for the primary by default (seconds).
DEFAULT_BARRIER_TIMEOUT_S = 30.0

#: Default poll slice for barriers over channels without send-side
#: notification (seconds).  Constructor-overridable so tight convergence
#: loops (the incremental-analytics fuzz lane) do not burn wall-clock.
DEFAULT_POLL_SLICE_S = 0.05


def apply_shipped_ops(store: DynamicGraphStore, ops) -> None:
    """Apply one shipment's decoded operations to a follower store.

    Raises :class:`ReplicationError` (instead of a bare ``AttributeError``
    deep in a store) when a weighted record meets an unweighted store --
    the same scheme-mismatch refusal recovery makes, surfaced per shipment.
    """
    for op in ops:
        if op[0] == INSERT_WEIGHTED and \
                not callable(getattr(store, "insert_weighted_edge", None)):
            raise ReplicationError(
                f"stream holds weighted records but the follower store "
                f"({store.name!r}) is not weighted"
            )
        apply_op(store, op)


class Follower:
    """One read replica: a store kept converged by applying the shipped log.

    Args:
        store: The structure shipped records are applied into.  When
            omitted, ``scheme`` (a registered persistence scheme name or a
            factory) builds it.
        scheme: Scheme used when ``store`` is not given.
        own_store: Close the store when the follower closes.  Defaults to
            owning exactly the store this constructor built.  A promoted
            follower never closes the store -- ownership moved to the
            returned :class:`PersistentStore`.
        poll_slice_s: Longest single sleep :meth:`wait_for` takes against a
            channel *without* send-side notification (a custom transport
            that never calls its listener).  Notifying transports ignore
            it.  Defaults to :data:`DEFAULT_POLL_SLICE_S`.
    """

    def __init__(
        self,
        store: Optional[DynamicGraphStore] = None,
        scheme: Union[str, Callable[[], DynamicGraphStore]] = "sharded",
        *,
        own_store: Optional[bool] = None,
        poll_slice_s: float = DEFAULT_POLL_SLICE_S,
    ):
        if poll_slice_s <= 0:
            raise ValueError(f"poll_slice_s must be > 0, got {poll_slice_s}")
        if store is None:
            self._store = _resolve_factory(scheme)()
            self._scheme_name = scheme if isinstance(scheme, str) else None
        else:
            self._store = store
            self._scheme_name = None
        self._own_store = (store is None) if own_store is None else own_store
        self._poll_slice_s = poll_slice_s
        self._channel: Optional[ReplicationChannel] = None
        self._primary = None
        self._generation = 0
        self._offsets: List[int] = []
        self._closed = False
        self._promoted = False
        # Arrival signalling for wait_for: the channel's send-side listener
        # sets _arrived and notifies, so the barrier sleeps instead of
        # spinning (see wait_for).
        self._arrival = threading.Condition()
        self._arrived = False
        #: Group commits applied; comparable with the primary's commit_index.
        self.commit_index = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def store(self) -> DynamicGraphStore:
        """The replica store (read it directly; never write to it)."""
        return self._store

    @property
    def attached(self) -> bool:
        return self._channel is not None and not self._channel.closed

    @property
    def generation(self) -> int:
        """Primary checkpoint generation the replica has observed."""
        return self._generation

    @property
    def position(self) -> WalPosition:
        """Exact per-segment cut this replica's state corresponds to.

        Feed it to ``recover(primary_dir, upto=position)`` to rebuild this
        very state from the primary's directory (copy the directory first:
        the rewind is destructive).
        """
        return WalPosition(generation=self._generation,
                           offsets=tuple(self._offsets))

    @property
    def promoted(self) -> bool:
        return self._promoted

    @property
    def closed(self) -> bool:
        return self._closed

    def lag(self) -> int:
        """Commits the attached primary has *logged* that this replica has
        not applied yet (0 when detached).

        Staleness is measured against ``Primary.logged_commit_index`` --
        committed group commits, shipped or still buffered -- not the
        shipped-only ``commit_index``: a primary that committed without
        pumping has a replica that really is behind, and ``lag()`` must say
        so (``ServiceMetrics`` already counts replica staleness this way;
        the two used to disagree exactly on the buffered-unshipped window).
        """
        if self._primary is None:
            return 0
        return max(0, self._primary.logged_commit_index - self.commit_index)

    # ------------------------------------------------------------------ #
    # Stream intake (called by Primary.attach / the read path)
    # ------------------------------------------------------------------ #

    def _connect(self, primary, channel: ReplicationChannel, *,
                 commit_index: int, generation: int, offsets) -> None:
        self._ensure_live()
        self._primary = primary
        self._channel = channel
        channel.set_listener(self._on_arrival)
        self.commit_index = commit_index
        self._generation = generation
        self._offsets = list(offsets)

    def _on_arrival(self) -> None:
        """Channel send-side hook: wake a barrier blocked in wait_for."""
        with self._arrival:
            self._arrived = True
            self._arrival.notify_all()

    def _disconnect(self) -> None:
        if self._channel is not None:
            self._channel.close()
            self._channel = None
        self._primary = None
        # A barrier blocked in wait_for must notice the detach, not sleep
        # out its whole timeout against a channel that no longer exists.
        with self._arrival:
            self._arrival.notify_all()

    def _ensure_live(self) -> None:
        if self._closed:
            raise ReplicationError("follower is closed")
        if self._promoted:
            raise ReplicationError(
                "follower was promoted; drive the returned PersistentStore"
            )

    def _apply(self, message) -> None:
        if isinstance(message, GenerationBump):
            # Everything the checkpoint folded was shipped first (the
            # primary's pre-truncation hook), so the store state is already
            # converged; only the position bookkeeping resets.
            self._generation = message.generation
            self._offsets = [WAL_HEADER_SIZE] * len(self._offsets)
            return
        if isinstance(message, RecordShipment):
            self._apply_ops(message.ops)
            self.commit_index = message.commit_index
            self._offsets[message.segment] = message.end_offset
            # Notify on apply: a wait_for blocked in another thread re-checks
            # its target index as soon as the commit index advances.
            with self._arrival:
                self._arrival.notify_all()
            return
        raise ReplicationError(f"unknown replication message {message!r}")

    def _apply_ops(self, ops) -> None:
        """Apply one shipment's decoded ops to the replica store.

        The seam subclasses hook to observe the change feed: an analytics
        follower (:class:`repro.analytics.incremental.AnalyticsFollower`)
        overrides this to also mark the touched source nodes dirty in its
        materialization cache.  Note that ``Primary.attach``'s backfill
        writes to the store *directly* (it replays the directory, not the
        channel), so subclasses must also treat :meth:`_connect` as a full
        invalidation point.
        """
        apply_shipped_ops(self._store, ops)

    def poll(self, max_records: Optional[int] = None) -> int:
        """Apply queued shipments without blocking; return how many.

        ``max_records`` caps the records applied (generation bumps are
        free), which is what lets tests stop a replica at an exact commit
        index mid-stream.
        """
        self._ensure_live()
        if self._channel is None:
            return 0
        applied = 0
        while max_records is None or applied < max_records:
            message = self._channel.receive()
            if message is None:
                return applied
            self._apply(message)
            if isinstance(message, RecordShipment):
                applied += 1
        return applied

    def wait_for(self, index: int,
                 timeout: float = DEFAULT_BARRIER_TIMEOUT_S) -> int:
        """Read-your-writes barrier: block until ``commit_index >= index``.

        Drains and applies queued shipments, then -- when the index is still
        short -- sleeps on a condition variable that the channel's send hook
        and every apply notify, instead of burning the wait polling the
        channel.  Returns the commit index reached.  Raises
        :class:`ReplicationError` if the primary does not deliver ``index``
        within ``timeout`` seconds (the replica is lagging or the primary
        stopped pumping), or if the follower is detached before reaching it.

        A channel without send-side notification (a custom transport that
        never calls its listener) degrades to short poll slices rather than
        sleeping out the whole timeout against a silent pipe.
        """
        self._ensure_live()
        deadline = time.monotonic() + timeout
        while True:
            # Drain whatever already arrived first: even when the index is
            # already met, a queued generation bump must not linger
            # unapplied.  Applying happens on this thread (followers stay
            # pull-based); the condition variable only schedules the wait.
            self.poll()
            if self.commit_index >= index:
                return self.commit_index
            # Re-checked after *every* wake, channel-closed included: a
            # transport dropping underneath the barrier (socket reset,
            # server shutdown) closes the channel without going through
            # _disconnect, and close() notifies -- the barrier must raise
            # promptly instead of sleeping out its whole timeout.
            if self._channel is None or self._channel.closed:
                raise ReplicationError(
                    f"follower is detached at commit {self.commit_index}; "
                    f"cannot reach {index}"
                )
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ReplicationError(
                    f"read-your-writes barrier timed out at commit "
                    f"{self.commit_index}, waiting for {index}"
                )
            if not self._channel.notifies_on_send:
                remaining = min(remaining, self._poll_slice_s)
            with self._arrival:
                # A message that landed between the poll above and this
                # acquire already set _arrived; skip the wait and re-drain
                # instead of sleeping through the missed wakeup.
                if not self._arrived:
                    self._arrival.wait(remaining)
                self._arrived = False

    # ------------------------------------------------------------------ #
    # Promotion and lifecycle
    # ------------------------------------------------------------------ #

    def promote(
        self,
        path: Optional[Union[str, Path]] = None,
        *,
        sync_on_commit: bool = True,
        compact_wal_bytes: Optional[int] = 1 << 20,
    ) -> PersistentStore:
        """Turn this caught-up replica into a standalone writable store.

        Detaches from the primary, wraps the replica store in a fresh
        :class:`PersistentStore` rooted at ``path`` (ephemeral when
        ``None``) and immediately checkpoints it.  The checkpoint stamps
        snapshot *and* segments with ``generation + 1`` -- one past every
        generation the old primary ever wrote -- which is the fencing
        token: a stale segment from the deposed primary dropped into the
        new directory carries an older generation, so recovery provably
        skips (and truncates) it instead of replaying a dead leader's
        writes over the new timeline.

        Call :meth:`wait_for` first if the replica must include specific
        commits; promotion takes the replica as it stands after draining
        what has already arrived.
        """
        self._ensure_live()
        # Drain the channel before reading self._generation: a queued
        # GenerationBump left unapplied would make the promoted checkpoint
        # reuse the deposed primary's *current* generation instead of
        # exceeding it, and its stale segments would pass the fence.
        self.poll()
        if self._primary is not None:
            self._primary.detach(self)
        store = PersistentStore(
            path,
            store=self._store,
            own_store=True,
            sync_on_commit=sync_on_commit,
            compact_wal_bytes=compact_wal_bytes,
            _scheme_name=self._scheme_name,
            _generation=self._generation,
        )
        store.checkpoint()  # commit point: snapshot + segments at generation+1
        self._promoted = True
        self._own_store = False  # ownership moved to the promoted wrapper
        return store

    def close(self) -> None:
        """Detach and (when owned) close the replica store.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._primary is not None:
            self._primary.detach(self)
        else:
            self._disconnect()
        if self._own_store:
            close = getattr(self._store, "close", None)
            if callable(close):
                close()

    def __enter__(self) -> "Follower":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
