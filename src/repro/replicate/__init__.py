"""Replication subsystem: WAL shipping, read replicas, PITR, failover.

PR 4's durability subsystem made every store restartable from one ordered
update log; this package makes that log the *replication stream*.  A
:class:`Primary` tails the committed WAL records of a live
:class:`~repro.persist.PersistentStore` (per-shard segments included) and
ships them over a pluggable transport (in-process queues, or TCP via
:class:`ReplicationServer`/:class:`RemoteFollower`); :class:`Follower`
replicas apply the stream into a store of any registered scheme, expose a
monotonic ``commit_index`` plus a read-your-writes barrier (``wait_for``),
and can be promoted into a standalone writable store whose bumped
generation fences out the deposed primary's stale segments.
:class:`FailoverManager` layers heartbeats and a lease-based election on
top of that promotion primitive, and point-in-time recovery rides the
same machinery: ``recover(path, upto=...)`` rewinds a directory to an
exact group-commit index or :class:`~repro.persist.WalPosition`.

Quickstart::

    from repro.persist import PersistentStore
    from repro.replicate import Primary, Follower

    primary_store = PersistentStore("/tmp/graph", scheme="sharded")
    primary = Primary(primary_store)
    replica = Follower(scheme="sharded")
    primary.attach(replica)

    primary_store.insert_edges([(1, 2), (1, 3)])
    primary.sync_and_pump()
    replica.wait_for(primary.commit_index)   # read-your-writes barrier
    assert replica.store.has_edge(1, 2)

Networked (each side may live in its own process)::

    from repro.replicate import ReplicationServer, RemoteFollower

    server = ReplicationServer(primary)          # primary's process
    replica = RemoteFollower(server.address)     # anywhere else
"""

from .failover import DEFAULT_LEASE_S, Failover, FailoverManager
from .follower import (
    DEFAULT_BARRIER_TIMEOUT_S,
    DEFAULT_POLL_SLICE_S,
    Follower,
    apply_shipped_ops,
)
from .group import FRESHNESS_POLICIES, ReplicationGroup
from .net import (
    DEFAULT_CONNECT_TIMEOUT_S,
    RemoteFollower,
    RemotePrimaryHandle,
    ReplicationServer,
    SocketChannel,
    decode_message,
    encode_message,
)
from .primary import ChannelSubscriber, Primary
from .transport import (
    GenerationBump,
    InProcessChannel,
    InProcessTransport,
    RecordShipment,
    ReplicationChannel,
    ReplicationTransport,
)

__all__ = [
    "ChannelSubscriber",
    "DEFAULT_BARRIER_TIMEOUT_S",
    "DEFAULT_CONNECT_TIMEOUT_S",
    "DEFAULT_LEASE_S",
    "DEFAULT_POLL_SLICE_S",
    "FRESHNESS_POLICIES",
    "Failover",
    "FailoverManager",
    "Follower",
    "GenerationBump",
    "InProcessChannel",
    "InProcessTransport",
    "Primary",
    "RecordShipment",
    "RemoteFollower",
    "RemotePrimaryHandle",
    "ReplicationChannel",
    "ReplicationGroup",
    "ReplicationServer",
    "ReplicationTransport",
    "SocketChannel",
    "apply_shipped_ops",
    "decode_message",
    "encode_message",
]
