"""Figure 7: edge-query throughput of every scheme on the seven datasets."""

from repro.core import CuckooGraph

from .conftest import (
    assert_ours_wins_majority,
    bench_stream,
    benchmark_callable,
    operation_payload,
    operation_table,
    write_bench_payload,
    write_report,
)


def test_fig07_query_throughput(benchmark, basic_task_results):
    """Regenerate the Figure 7 series and benchmark CuckooGraph queries."""
    write_report("fig07_query", operation_table(basic_task_results, "query"))
    write_bench_payload(
        "fig07", operation_payload("fig07_query", basic_task_results, "query")
    )
    # The query advantage is the paper's strongest basic-task result; it must
    # hold on every dataset in the access model.
    assert_ours_wins_majority(basic_task_results, "query", minimum_fraction=0.99)

    edges = list(bench_stream("CAIDA").deduplicated())
    store = CuckooGraph()
    for u, v in edges:
        store.insert_edge(u, v)

    def query_all():
        return sum(1 for u, v in edges if store.has_edge(u, v))

    assert benchmark_callable(benchmark, query_all) == len(edges)
