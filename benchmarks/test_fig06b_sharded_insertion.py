"""Figure 6b (extension): shard-count scaling of the batched front-end.

Not a figure from the paper: this benchmark drives the reproduction's
:class:`~repro.core.sharded.ShardedCuckooGraph` through the insertion / query
/ deletion throughput templates at 1, 2, 4 and 8 shards, using the batch APIs
(``insert_edges`` / ``has_edges`` / ``delete_edges``) that group operations
per shard.  In single-threaded pure Python the shards run sequentially, so
the interesting outputs are (a) that correctness and totals are identical at
every shard count, (b) how per-shard structure sizes shrink as shards are
added (the quantity a parallel deployment scales on), and (c) that the batch
paths cost no more modelled memory accesses than the one-edge-at-a-time
loops.
"""

from __future__ import annotations

import time

from repro.bench import format_table
from repro.core import ShardedCuckooGraph

from .conftest import (bench_stream, benchmark_callable, write_bench_payload,
                       write_report)

SHARD_COUNTS = (1, 2, 4, 8)


def _throughput(operations: int, seconds: float) -> float:
    return operations / seconds / 1e6 if seconds > 0 else float("inf")


def test_fig06b_shard_scaling(benchmark):
    """Batch insert/query/delete throughput and balance at 1/2/4/8 shards."""
    stream = bench_stream("CAIDA")
    edges = list(stream.deduplicated())
    rows = []
    edge_totals = set()
    for num_shards in SHARD_COUNTS:
        store = ShardedCuckooGraph(num_shards=num_shards)
        store.reset_accesses()

        start = time.perf_counter()
        inserted = store.insert_edges(edges)
        insert_seconds = time.perf_counter() - start
        insert_accesses = store.accesses

        assert inserted == len(edges)
        edge_totals.add(store.num_edges)

        store.reset_accesses()
        start = time.perf_counter()
        answers = store.has_edges(edges)
        query_seconds = time.perf_counter() - start
        query_accesses = store.accesses
        assert all(answers)

        sizes = store.shard_sizes()

        store.reset_accesses()
        start = time.perf_counter()
        deleted = store.delete_edges(edges)
        delete_seconds = time.perf_counter() - start
        assert deleted == len(edges)
        assert store.num_edges == 0

        rows.append({
            "shards": num_shards,
            "operations": len(edges),
            "insert_mops": round(_throughput(len(edges), insert_seconds), 4),
            "query_mops": round(_throughput(len(edges), query_seconds), 4),
            "delete_mops": round(_throughput(len(edges), delete_seconds), 4),
            "insert_accesses_per_op": round(insert_accesses / len(edges), 3),
            "query_accesses_per_op": round(query_accesses / len(edges), 3),
            "max_shard_edges": max(sizes),
            "min_shard_edges": min(sizes),
        })

    # Every shard count stores exactly the same edge set.
    assert edge_totals == {len(edges)}

    # Routing must spread load: with 8 shards no single shard may hold the
    # whole graph, and the biggest shard should be within 3x of fair share.
    assert rows[-1]["max_shard_edges"] < len(edges)
    assert rows[-1]["max_shard_edges"] <= 3 * (len(edges) / SHARD_COUNTS[-1])

    write_report(
        "fig06b_sharded_insertion",
        format_table(
            rows,
            columns=["shards", "operations", "insert_mops", "query_mops",
                     "delete_mops", "insert_accesses_per_op",
                     "query_accesses_per_op", "max_shard_edges",
                     "min_shard_edges"],
            title="Batched CuckooGraph front-end vs shard count (CAIDA stand-in)",
        ),
    )
    write_bench_payload("fig06b", {
        "figure": "fig06b_sharded_insertion",
        "dataset": "CAIDA",
        "operations": len(edges),
        "shard_counts": list(SHARD_COUNTS),
        "rows": rows,
    })

    def batch_insert_all():
        store = ShardedCuckooGraph(num_shards=4)
        return store.insert_edges(edges)

    assert benchmark_callable(benchmark, batch_insert_all) == len(edges)
