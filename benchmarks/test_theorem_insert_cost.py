"""Section IV check: average placement attempts per inserted item.

The paper verifies Theorem 1 by inserting the NotreDame edges and measuring
about 1.017 placements per item in the L-CHT and 1.006 in the S-CHTs; this
benchmark reproduces the experiment on the scaled NotreDame stand-in and
checks that the amortized attempts stay within Theorem 2's worst-case bound
of 3 placements per edge.
"""

from repro.bench import format_table
from repro.core import CuckooGraph
from repro.datasets import load_dataset

from .conftest import benchmark_callable, write_report


def _insert_all(edges) -> CuckooGraph:
    graph = CuckooGraph()
    for u, v in edges:
        graph.insert_edge(u, v)
    return graph


def test_theorem_average_insert_attempts(benchmark):
    edges = list(load_dataset("NotreDame").deduplicated())
    graph = _insert_all(edges)
    counters = graph.counters
    attempts_per_edge = counters.insert_attempts / counters.edges_inserted
    kicks_per_edge = counters.kicks / counters.edges_inserted

    write_report("theorem_insert_cost", format_table(
        [{
            "dataset": "NotreDame (scaled)",
            "edges": counters.edges_inserted,
            "placement_attempts_per_edge": round(attempts_per_edge, 4),
            "kicks_per_edge": round(kicks_per_edge, 4),
            "expansions": counters.expansions,
            "insert_failures": counters.insert_failures,
        }],
        title="Average insertion cost (Theorem 1/2 verification)",
    ))

    # Theorem 2: total placements bounded by 3N (worst case); kicks stay rare.
    assert attempts_per_edge < 3.0
    assert kicks_per_edge < 1.0
    # Failures must be a vanishing fraction, as the DENYLIST design assumes.
    assert counters.insert_failures <= counters.edges_inserted * 0.01

    benchmark_callable(benchmark, _insert_all, edges[:4000])
