"""Figure 6e (extension): what log-shipping replication costs and buys.

Not a figure from the paper: the paper's stack is a single in-memory
structure, and this benchmark measures the three quantities that decide
whether the replication subsystem (:mod:`repro.replicate`) is deployable
in front of it:

* **Replication lag vs batch size** -- the durable replicated service under
  ``freshness="any"``: reads sample how many group commits the replica
  trails by when micro-batches (one group commit each) grow from 16 to 512
  requests;
* **Read throughput vs replica count** -- the same preloaded service serving
  a pipelined read mix (membership + successors) with 0 (primary-only),
  1, 2 and 4 read replicas under the read-your-writes barrier, with the
  round-robin fan-out visible in the per-replica read counts;
* **Ship throughput vs transport** -- the same committed history shipped to
  one replica through the in-process queue channel vs a real TCP socket
  (:class:`~repro.replicate.ReplicationServer` +
  :class:`~repro.replicate.RemoteFollower`): commits and edges per second
  until the replica converges, i.e. what the wire costs over shared memory;
* **PITR replay rate** -- ``recover(upto=...)`` rewinding a copied directory
  to 25% / 50% / 100% of its group commits: commits and edges per second
  of point-in-time recovery.

All store directories live under pytest's ``tmp_path``, so a benchmark run
leaves nothing behind.
"""

from __future__ import annotations

import shutil
import time

from repro.bench import format_table
from repro.core import ShardedCuckooGraph
from repro.persist import LOCK_NAME, PersistentStore, recover
from repro.replicate import Follower, Primary, RemoteFollower, ReplicationServer
from repro.service import GraphService

from .conftest import (bench_stream, benchmark_callable, write_bench_payload,
                       write_report)

NUM_SHARDS = 4

#: Micro-batch sizes for the lag sweep (requests per dispatch window).
LAG_BATCH_SIZES = (16, 128, 512)

#: Replica counts for the read-throughput sweep (0 = primary serves reads).
REPLICA_COUNTS = (0, 1, 2, 4)

#: Transport lanes for the shipping sweep (queue channel vs TCP socket).
TRANSPORT_LANES = ("inprocess", "socket")

#: Edges per group commit in the transport-shipping sweep.
SHIP_COMMIT_OPS = 256

#: Group-commit batch size used to build the PITR history.
PITR_COMMIT_OPS = 64

#: Fractions of the commit history the PITR sweep rewinds to.
PITR_FRACTIONS = (0.25, 0.5, 1.0)


def _durable(tmp_path, name):
    return PersistentStore(
        tmp_path / name,
        store=ShardedCuckooGraph(num_shards=NUM_SHARDS),
        own_store=True,
        sync_on_commit=False,
        compact_wal_bytes=None,
    )


def test_fig06e_replication(benchmark, tmp_path):
    """Replication lag, read fan-out and point-in-time replay rate."""
    edges = list(bench_stream("CAIDA").deduplicated())
    operations = len(edges)

    # ---------------- replication lag vs batch size -------------------- #
    # Buffered commits (durability="none", no per-run fsync): the log runs
    # ahead of what the tailer can ship, so ``freshness="any"`` reads see
    # genuine staleness and the lag gauge measures it in group commits.
    # Bigger micro-batch windows coalesce the same traffic into fewer
    # commits, so the *count* a replica trails by shrinks as batches grow.
    lag_rows = []
    for max_batch in LAG_BATCH_SIZES:
        store = _durable(tmp_path, f"lag-{max_batch}")
        with GraphService(store, own_store=True, replicas=1,
                          freshness="any", max_batch=max_batch,
                          queue_capacity=operations + 64) as service:
            futures = []
            for index, (u, v) in enumerate(edges):
                futures.append(service.insert_edge(u, v))
                if index % 200 == 199:
                    # Interleaved stale read: samples the replica's lag.
                    futures.append(service.has_edge(u, v))
            for future in futures:
                future.result(timeout=60)
            commits = store.commits
            summary = service.metrics_summary()
        replication = summary["replication"]
        lag_rows.append({
            "max_batch": max_batch,
            "operations": operations,
            "group_commits": commits,
            "mean_batch": round(summary["mean_batch_size"], 1),
            "lag_samples": replication["lag_samples"],
            "lag_mean": round(replication["lag_mean"], 2),
            "lag_max": replication["lag_max"],
        })
    assert all(row["lag_samples"] > 0 for row in lag_rows)
    assert all(row["lag_max"] > 0 for row in lag_rows)
    # Bigger windows -> fewer group commits for the same traffic, and a
    # correspondingly smaller commit-count lag.
    assert lag_rows[0]["group_commits"] > lag_rows[-1]["group_commits"]
    assert lag_rows[0]["lag_max"] > lag_rows[-1]["lag_max"]

    # ---------------- read throughput vs replica count ------------------ #
    read_rows = []
    probe_edges = edges[:1000]
    probe_nodes = list(dict.fromkeys(u for u, _ in probe_edges))[:500]
    for replicas in REPLICA_COUNTS:
        store = _durable(tmp_path, f"reads-{replicas}")
        with GraphService(store, own_store=True, durability="batch",
                          replicas=replicas, freshness="read_your_writes",
                          max_batch=256,
                          queue_capacity=operations + 64) as service:
            futures = [service.insert_edge(u, v) for u, v in edges]
            for future in futures:
                future.result(timeout=60)
            start = time.perf_counter()
            reads = [service.has_edge(u, v) for u, v in probe_edges]
            reads += [service.successors(u) for u in probe_nodes]
            for future in reads:
                future.result(timeout=60)
            seconds = time.perf_counter() - start
            summary = service.metrics_summary()
        replication = summary["replication"]
        fanout = replication["replica_reads"]
        read_rows.append({
            "replicas": replicas,
            "reads": len(reads),
            "kreads": round(len(reads) / seconds / 1e3, 2),
            "replica_reads": "-" if not fanout else
                "/".join(str(fanout.get(i, 0)) for i in range(replicas)),
            "lag_mean": round(replication["lag_mean"], 2),
        })
        # Round-robin: with replicas, every follower served some reads.
        if replicas:
            assert len(fanout) == replicas
    assert read_rows[0]["replica_reads"] == "-"  # primary-only baseline

    # ---------------- ship throughput vs transport ---------------------- #
    # Same commit pacing on both lanes; the only variable is the channel:
    # the in-process queue vs a length-prefixed CRC-framed TCP stream.
    transport_rows = []
    for lane in TRANSPORT_LANES:
        store = _durable(tmp_path, f"ship-{lane}")
        primary = Primary(store)
        server = None
        if lane == "socket":
            server = ReplicationServer(primary)
            follower = RemoteFollower(
                server.address,
                store=ShardedCuckooGraph(num_shards=NUM_SHARDS))
        else:
            follower = Follower(store=ShardedCuckooGraph(num_shards=NUM_SHARDS))
            primary.attach(follower)
        start = time.perf_counter()
        for start_index in range(0, operations, SHIP_COMMIT_OPS):
            store.insert_edges(edges[start_index:start_index + SHIP_COMMIT_OPS])
            primary.sync_and_pump()
        follower.wait_for(primary.commit_index, timeout=120.0)
        seconds = time.perf_counter() - start
        assert follower.store.num_edges == operations
        transport_rows.append({
            "transport": lane,
            "operations": operations,
            "group_commits": store.commits,
            "seconds": round(seconds, 4),
            "commits_per_s": round(store.commits / seconds, 0),
            "kedges_per_s": round(operations / seconds / 1e3, 2),
        })
        follower.close()
        if server is not None:
            server.close()
        primary.close()
        store.close()
    # Both transports converge on the full load; the socket lane pays a
    # real wire cost but must stay in the same order of magnitude.
    assert all(row["operations"] == operations for row in transport_rows)

    # ---------------- PITR replay rate ---------------------------------- #
    source = tmp_path / "pitr-source"
    store = PersistentStore(source, store=ShardedCuckooGraph(num_shards=NUM_SHARDS),
                            own_store=True, sync_on_commit=False,
                            compact_wal_bytes=None)
    commits = 0
    for start_index in range(0, operations, PITR_COMMIT_OPS):
        chunk = edges[start_index:start_index + PITR_COMMIT_OPS]
        store.insert_edges(chunk)
        commits += 1
    store.close()
    # One group commit fans out to one record per touched segment; count
    # the *records* (what ``upto`` indexes) from the log itself.
    from repro.persist import read_wal_records
    total_records = sum(
        len(read_wal_records(segment)[1])
        for segment in sorted(source.glob("wal-*.bin"))
    )

    def rewind_copy(name, upto):
        workdir = tmp_path / name
        shutil.copytree(source, workdir)
        lock = workdir / LOCK_NAME
        if lock.exists():
            lock.unlink()
        started = time.perf_counter()
        recovered = recover(workdir,
                            store=ShardedCuckooGraph(num_shards=NUM_SHARDS),
                            upto=upto)
        seconds = time.perf_counter() - started
        replayed_ops = recovered.last_recovery["wal_ops"]
        edge_count = recovered.num_edges
        recovered.close()
        return seconds, replayed_ops, edge_count

    pitr_rows = []
    for fraction in PITR_FRACTIONS:
        upto = int(total_records * fraction)
        seconds, replayed_ops, edge_count = rewind_copy(f"pitr-{fraction}", upto)
        pitr_rows.append({
            "upto_fraction": fraction,
            "upto_commits": upto,
            "replayed_ops": replayed_ops,
            "edges": edge_count,
            "seconds": round(seconds, 4),
            "commits_per_s": round(upto / seconds, 0) if seconds else 0,
            "edges_per_s": round(replayed_ops / seconds, 0) if seconds else 0,
        })
    # Rewinding to 100% of the records reproduces the full load.
    assert pitr_rows[-1]["edges"] == operations
    # Earlier cuts replay strictly less.
    assert pitr_rows[0]["replayed_ops"] < pitr_rows[-1]["replayed_ops"]

    write_report(
        "fig06e_replication",
        "\n\n".join([
            format_table(
                lag_rows,
                columns=["max_batch", "operations", "group_commits",
                         "mean_batch", "lag_samples", "lag_mean", "lag_max"],
                title='Replication lag vs micro-batch size '
                      '(freshness="any", 1 replica, CAIDA stand-in)'),
            format_table(
                read_rows,
                columns=["replicas", "reads", "kreads", "replica_reads",
                         "lag_mean"],
                title="Read throughput vs replica count "
                      "(read-your-writes barrier, round-robin fan-out)"),
            format_table(
                transport_rows,
                columns=["transport", "operations", "group_commits",
                         "seconds", "commits_per_s", "kedges_per_s"],
                title="Ship throughput vs transport "
                      "(in-process queue vs TCP socket, 1 replica)"),
            format_table(
                pitr_rows,
                columns=["upto_fraction", "upto_commits", "replayed_ops",
                         "edges", "seconds", "commits_per_s", "edges_per_s"],
                title="Point-in-time recovery: recover(upto=...) replay rate"),
        ]),
    )
    write_bench_payload("fig06e", {
        "figure": "fig06e_replication",
        "dataset": "CAIDA",
        "operations": operations,
        "num_shards": NUM_SHARDS,
        "lag_batch_sizes": list(LAG_BATCH_SIZES),
        "replica_counts": list(REPLICA_COUNTS),
        "transport_lanes": list(TRANSPORT_LANES),
        "pitr_fractions": list(PITR_FRACTIONS),
        "lag_rows": lag_rows,
        "read_rows": read_rows,
        "transport_rows": transport_rows,
        "pitr_rows": pitr_rows,
    })

    # Representative operation: PITR to half the history.
    half = int(total_records * 0.5)
    counter = iter(range(1_000_000))

    def pitr_half():
        _, replayed, _ = rewind_copy(f"pitr-bench-{next(counter)}", half)
        return replayed

    assert benchmark_callable(benchmark, pitr_half) >= 0
