"""Figure 6f (extension): process-backed shards vs the serial executor.

Not a figure from the paper: this benchmark measures the one axis the
process executor exists to move -- wall-clock under CPU-bound batch work --
while proving it moved nothing else.  The same deduplicated CAIDA stand-in
stream is driven through ``ShardedCuckooGraph`` at 1, 2 and 4 shards under
``executor="serial"`` and ``executor="processes"`` (one worker per shard),
recording batched insert and query throughput plus per-batch p95 latency.

Two classes of assertion:

* **Correctness, unconditionally:** per-batch results, final edge sets,
  aggregated counters and modelled accesses must be byte-identical between
  the executors on every run, single-core boxes included -- crossing a
  process boundary may not change one observable bit.
* **Scaling, only where the silicon exists:** on hosts with at least four
  CPUs, the 4-shard/4-worker process executor must clear a >= 2x speedup
  over serial on the combined insert+query wall-clock.  On smaller hosts
  the workers time-slice one core and the RPC overhead is all that is
  measured, so the speedup gate is skipped (and recorded in the report).

The numbers land both as the usual text table and as machine-readable
``BENCH_fig06f.json`` (see :func:`repro.bench.reporting.write_bench_json`)
for CI trend tooling.
"""

from __future__ import annotations

import os
import time

from repro.bench import format_table
from repro.core import ShardedCuckooGraph

from .conftest import (bench_stream, benchmark_callable, write_bench_payload,
                       write_report)

SHARD_COUNTS = (1, 2, 4)

#: Batch size of the driven workload: large enough that each RPC ships real
#: work, small enough that several batches land per shard count for the p95.
BATCH_SIZE = 500

#: Cores needed before the speedup gate applies (4 shards / 4 workers).
MIN_CPUS_FOR_SPEEDUP_GATE = 4

#: The gate itself: ISSUE acceptance -- at least 2x over serial at 4 shards.
REQUIRED_SPEEDUP = 2.0


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def _drive(executor: str, num_shards: int, edges: list) -> dict:
    """Run the batched insert+query workload; return timings and observables."""
    store = ShardedCuckooGraph(num_shards=num_shards, executor=executor,
                               max_workers=num_shards)
    try:
        batches = [edges[i:i + BATCH_SIZE] for i in range(0, len(edges), BATCH_SIZE)]
        batch_latencies: list[float] = []
        insert_counts: list[int] = []
        start = time.perf_counter()
        for batch in batches:
            batch_start = time.perf_counter()
            insert_counts.append(store.insert_edges(batch))
            batch_latencies.append(time.perf_counter() - batch_start)
        insert_seconds = time.perf_counter() - start

        query_answers: list[bool] = []
        start = time.perf_counter()
        for batch in batches:
            batch_start = time.perf_counter()
            query_answers.extend(store.has_edges(batch))
            batch_latencies.append(time.perf_counter() - batch_start)
        query_seconds = time.perf_counter() - start

        return {
            "executor": executor,
            "shards": num_shards,
            "insert_seconds": insert_seconds,
            "query_seconds": query_seconds,
            "total_seconds": insert_seconds + query_seconds,
            "batch_p95_ms": _percentile(batch_latencies, 0.95) * 1e3,
            "insert_counts": insert_counts,
            "query_answers": query_answers,
            "edges": sorted(store.edges()),
            "num_edges": store.num_edges,
            "accesses": store.accesses,
            "counters": store.counters.snapshot(),
        }
    finally:
        store.close()


def test_fig06f_multicore_scaling(benchmark):
    """Process-executor scaling curve; byte-identical observables always."""
    stream = bench_stream("CAIDA")
    edges = list(stream.deduplicated())
    cpu_count = os.cpu_count() or 1

    rows = []
    results = {}
    for num_shards in SHARD_COUNTS:
        serial = _drive("serial", num_shards, edges)
        procs = _drive("processes", num_shards, edges)
        results[num_shards] = (serial, procs)

        # The correctness half: every observable is identical, everywhere.
        assert procs["insert_counts"] == serial["insert_counts"]
        assert procs["query_answers"] == serial["query_answers"]
        assert all(procs["query_answers"])
        assert procs["edges"] == serial["edges"]
        assert procs["num_edges"] == serial["num_edges"] == len(edges)
        assert procs["accesses"] == serial["accesses"]
        assert procs["counters"] == serial["counters"]

        speedup = serial["total_seconds"] / procs["total_seconds"] \
            if procs["total_seconds"] > 0 else float("inf")
        for result, label in ((serial, "serial"), (procs, "processes")):
            rows.append({
                "shards": num_shards,
                "executor": label,
                "insert_s": round(result["insert_seconds"], 4),
                "query_s": round(result["query_seconds"], 4),
                "total_s": round(result["total_seconds"], 4),
                "batch_p95_ms": round(result["batch_p95_ms"], 3),
                "speedup_vs_serial": round(speedup, 3) if label == "processes" else 1.0,
            })

    gate_applies = cpu_count >= MIN_CPUS_FOR_SPEEDUP_GATE
    serial_4, procs_4 = results[SHARD_COUNTS[-1]]
    speedup_at_4 = serial_4["total_seconds"] / procs_4["total_seconds"] \
        if procs_4["total_seconds"] > 0 else float("inf")
    if gate_applies:
        # The scaling half of the acceptance criterion: >= 2x at 4 shards /
        # 4 workers on a box that actually has 4 cores to run them on.
        assert speedup_at_4 >= REQUIRED_SPEEDUP, (
            f"process executor reached only {speedup_at_4:.2f}x over serial at "
            f"{SHARD_COUNTS[-1]} shards on a {cpu_count}-core host "
            f"(required {REQUIRED_SPEEDUP}x)"
        )

    title = (
        f"Process-backed vs serial executor (CAIDA stand-in, "
        f"batch={BATCH_SIZE}, cpus={cpu_count}, "
        f"speedup gate {'applied' if gate_applies else 'skipped: <4 cpus'})"
    )
    write_report(
        "fig06f_multicore",
        format_table(
            rows,
            columns=["shards", "executor", "insert_s", "query_s", "total_s",
                     "batch_p95_ms", "speedup_vs_serial"],
            title=title,
        ),
    )
    write_bench_payload("fig06f", {
        "figure": "fig06f_multicore",
        "dataset": "CAIDA",
        "batch_size": BATCH_SIZE,
        "operations": len(edges),
        "cpu_count": cpu_count,
        "speedup_gate_applied": gate_applies,
        "required_speedup": REQUIRED_SPEEDUP,
        "speedup_at_max_shards": round(speedup_at_4, 4),
        "rows": rows,
    })

    def processes_insert_all():
        with ShardedCuckooGraph(num_shards=4, executor="processes") as store:
            return store.insert_edges(edges)

    assert benchmark_callable(benchmark, processes_insert_all) == len(edges)
