"""Shared fixtures and helpers for the per-figure benchmarks.

Every file under ``benchmarks/`` regenerates one table or figure of the
paper's evaluation section (see DESIGN.md for the index).  Each benchmark

* drives the same scaled synthetic datasets through the scheme(s) the figure
  compares,
* prints the figure's rows/series and appends them to
  ``benchmarks/results/<figure>.txt`` so a full run leaves a reviewable
  record, and
* registers one representative operation with ``pytest-benchmark`` so the
  usual ``--benchmark-only`` machinery reports wall-clock numbers.

The scaled workloads are kept small enough for the whole suite to run in a
few minutes of pure Python; the *shape* conclusions are drawn from the
modelled memory accesses and memory bytes, as explained in EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib
from typing import Callable

import pytest

from repro.bench import (
    OURS,
    OURS_FAMILY,
    SCHEMES,
    dataset_stream,
    format_table,
    run_basic_tasks,
    write_bench_json,
)
from repro.datasets import DATASET_ORDER, EdgeStream

#: Directory containing the benchmark suite (used to auto-mark its tests).
BENCH_DIR = pathlib.Path(__file__).parent

#: Whether this run may overwrite existing result files (``--bench-update``).
#: Without the flag a result file is only written when it does not exist yet:
#: the timing columns change on every run, and unconditional rewrites used to
#: churn hundreds of pure-noise diff lines under ``benchmarks/results/``.
_BENCH_UPDATE = False


def pytest_addoption(parser):
    parser.addoption(
        "--bench-update",
        action="store_true",
        default=False,
        help="rewrite benchmarks/results/ tables and BENCH_*.json files "
             "(without this flag, existing timing-bearing files are left "
             "untouched so result diffs reflect real changes)",
    )


def pytest_configure(config):
    global _BENCH_UPDATE
    _BENCH_UPDATE = config.getoption("--bench-update", default=False)


def pytest_collection_modifyitems(items):
    """Tag every test in this directory with the ``benchmark`` marker.

    CI collects the whole suite but deselects the figure regenerations with
    ``-m "not benchmark"``; local full runs (the tier-1 command) still
    execute them.
    """
    for item in items:
        if BENCH_DIR in pathlib.Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.benchmark)

#: Upper bound on stream arrivals per dataset for the benchmark runs.
#: The basic-task figures use a larger slice so that degree-dependent costs
#: (adjacency scans, log scans) are visible, as they are at the paper's scale.
BENCH_STREAM_LIMIT = 8000

#: Directory where each figure's printed rows are also written to disk.
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_stream(name: str, limit: int = BENCH_STREAM_LIMIT) -> EdgeStream:
    """The scaled stand-in stream for ``name``, truncated for benchmark speed."""
    stream = dataset_stream(name)
    return stream.prefix(limit) if len(stream) > limit else stream


def write_report(figure: str, text: str) -> None:
    """Print a figure's rows; persist them only when allowed to.

    The rows always print (a benchmark run is reviewable from its output);
    the ``benchmarks/results/<figure>.txt`` file is written when it does not
    exist yet or the run passed ``--bench-update``, so committed tables stop
    churning on every rerun's timing noise.
    """
    print(f"\n{text}\n")
    path = RESULTS_DIR / f"{figure}.txt"
    if _BENCH_UPDATE or not path.exists():
        RESULTS_DIR.mkdir(exist_ok=True)
        path.write_text(text + "\n")


def write_bench_payload(figure: str, payload: dict) -> None:
    """Machine-readable counterpart of :func:`write_report`, same gating.

    Writes ``benchmarks/results/BENCH_<figure>.json`` via
    :func:`repro.bench.write_bench_json` when the file is missing or the run
    passed ``--bench-update``.
    """
    if _BENCH_UPDATE or not (RESULTS_DIR / f"BENCH_{figure}.json").exists():
        write_bench_json(figure, payload, RESULTS_DIR)


@pytest.fixture(scope="session")
def basic_task_results() -> dict[str, dict[str, dict]]:
    """Figures 6-8 share one pass: dataset -> scheme -> {insert,query,delete}."""
    results: dict[str, dict[str, dict]] = {}
    for dataset in DATASET_ORDER:
        stream = bench_stream(dataset)
        results[dataset] = {
            scheme: run_basic_tasks(scheme, dataset, stream) for scheme in SCHEMES
        }
    return results


def operation_table(results: dict[str, dict[str, dict]], operation: str) -> str:
    """Render the Figure 6/7/8 rows for one operation."""
    rows = []
    for dataset, per_scheme in results.items():
        for scheme, ops in per_scheme.items():
            rows.append(ops[operation].as_row())
    return format_table(
        rows,
        columns=["dataset", "scheme", "operations", "mops", "accesses_per_op",
                 "modelled_mops"],
        title=f"{operation.capitalize()} throughput across datasets "
              f"(wall-clock Mops and modelled accesses/op)",
    )


def operation_payload(figure: str, results: dict[str, dict[str, dict]],
                      operation: str) -> dict:
    """Machine-readable rows for one Figure 6/7/8 operation table."""
    return {
        "figure": figure,
        "operation": operation,
        "rows": [
            per_scheme[scheme][operation].as_row()
            for dataset, per_scheme in results.items()
            for scheme in per_scheme
        ],
    }


def assert_ours_wins_majority(results: dict[str, dict[str, dict]], operation: str,
                              minimum_fraction: float = 0.5) -> None:
    """Shape check: CuckooGraph beats each competitor on most datasets.

    Schemes in ``OURS_FAMILY`` (the sharded front-end) are our own variants,
    not competitors, so they are excluded from the comparison.
    """
    for competitor in (scheme for scheme in SCHEMES if scheme not in OURS_FAMILY):
        wins = 0
        for dataset, per_scheme in results.items():
            ours = per_scheme[OURS][operation].accesses_per_op
            theirs = per_scheme[competitor][operation].accesses_per_op
            if ours <= theirs:
                wins += 1
        assert wins >= len(results) * minimum_fraction, (
            f"CuckooGraph should need fewer memory accesses than {competitor} for "
            f"{operation} on at least {minimum_fraction:.0%} of datasets (won {wins})"
        )


def benchmark_callable(benchmark, function: Callable, *args, **kwargs):
    """Register a representative operation with pytest-benchmark."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=3, iterations=1)


#: Smaller stream limit for the quadratic-ish analytics kernels (TC, BC, LCC).
ANALYTICS_STREAM_LIMIT = 1500


def run_analytics_figure(figure: str, task: str, benchmark,
                         stream_limit: int = ANALYTICS_STREAM_LIMIT,
                         **task_kwargs) -> list[dict]:
    """Shared driver for Figures 10-16: run one kernel for every scheme/dataset.

    Returns the report rows; also writes them to ``benchmarks/results`` and
    registers a CuckooGraph run on the CAIDA stand-in with pytest-benchmark.
    """
    from repro.bench import ANALYTICS_TASKS  # local import keeps conftest light

    driver = ANALYTICS_TASKS[task]
    rows = []
    for dataset in DATASET_ORDER:
        stream = bench_stream(dataset, stream_limit)
        for scheme in SCHEMES:
            result = driver(scheme, dataset, stream, **task_kwargs)
            rows.append(result.as_row())
    write_report(
        figure,
        format_table(rows,
                     columns=["dataset", "scheme", "task", "seconds", "batch_calls",
                              "accesses", "detail"],
                     title=f"Running time of {task} on every dataset and scheme "
                           f"(batched traversal engine)"),
    )
    # Every scheme must have been driven through the batch layer: the engine
    # issues at least one batched store call per cell.
    assert all(row["batch_calls"] >= 1 for row in rows)
    # Every cell must have completed with a non-negative running time.
    assert all(row["seconds"] >= 0 for row in rows)
    assert len(rows) == len(DATASET_ORDER) * len(SCHEMES)

    caida = bench_stream("CAIDA", stream_limit)
    benchmark.pedantic(driver, args=(OURS, "CAIDA", caida), kwargs=task_kwargs,
                       rounds=2, iterations=1)
    return rows
