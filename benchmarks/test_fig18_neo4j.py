"""Figure 18: mini-Neo4j insertion/query time with and without CuckooGraph."""

import time

from repro.bench import format_table
from repro.integrations import MiniNeo4j

from .conftest import bench_stream, benchmark_callable, write_report


def test_fig18_neo4j_with_and_without_index(benchmark):
    """Load an edge stream and query every distinct pair, both configurations.

    The paper loads 1M CAIDA edges; the scaled run uses a 20k-arrival slice so
    that node degrees are high enough for the adjacency-list traversal cost
    (what the CuckooGraph index removes) to dominate the measurement.
    """
    stream = bench_stream("CAIDA", 20000)
    distinct = list(stream.deduplicated())
    rows = []
    query_seconds = {}
    for label, use_index in (("Ours+Neo4j", True), ("Neo4j", False)):
        db = MiniNeo4j(use_cuckoo_index=use_index)
        start = time.perf_counter()
        db.load_edge_stream(stream)
        insert_seconds = time.perf_counter() - start
        start = time.perf_counter()
        found = sum(1 for u, v in distinct if db.has_relationship(u, v))
        query_seconds[label] = time.perf_counter() - start
        rows.append({
            "configuration": label,
            "insert_seconds": round(insert_seconds, 4),
            "query_seconds": round(query_seconds[label], 4),
            "pairs_found": found,
        })
        assert found == len(distinct)
    write_report("fig18_neo4j",
                 format_table(rows, title="Neo4j with/without CuckooGraph (Figure 18)"))

    # Shape check from the paper: insertion times are comparable (the index
    # adds only a little overhead) while queries with the CuckooGraph index
    # are faster than traversing adjacency lists.
    assert query_seconds["Ours+Neo4j"] < query_seconds["Neo4j"] * 1.2

    def indexed_queries():
        db = MiniNeo4j(use_cuckoo_index=True)
        db.load_edge_stream(stream.prefix(800))
        return sum(1 for u, v in distinct[:500] if db.has_relationship(u, v))

    benchmark_callable(benchmark, indexed_queries)
