"""Figure 10: BFS running time from the highest-total-degree roots."""

from .conftest import run_analytics_figure


def test_fig10_bfs_running_time(benchmark):
    run_analytics_figure("fig10_bfs", "BFS", benchmark, root_count=3)
