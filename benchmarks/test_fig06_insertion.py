"""Figure 6: insertion throughput of every scheme on the seven datasets."""

from repro.bench import OURS
from repro.core import CuckooGraph

from .conftest import (
    bench_stream,
    benchmark_callable,
    operation_payload,
    operation_table,
    write_bench_payload,
    write_report,
)


def test_fig06_insertion_throughput(benchmark, basic_task_results):
    """Regenerate the Figure 6 series and benchmark CuckooGraph insertion."""
    write_report("fig06_insertion", operation_table(basic_task_results, "insert"))
    write_bench_payload(
        "fig06", operation_payload("fig06_insertion", basic_task_results, "insert")
    )
    # Shape check: CuckooGraph needs the fewest modelled memory accesses per
    # insertion on the majority of datasets against the adjacency-list /
    # sorted-block / matrix schemes.  Against Spruce the access model shows
    # rough parity (ties within ~25%) rather than the paper's 33x -- that
    # factor comes from constant-cost effects (cache misses, allocation)
    # below the granularity of an access count; see EXPERIMENTS.md.
    for competitor in ("LiveGraph", "Sortledton", "WBI"):
        wins = sum(
            1 for dataset, per_scheme in basic_task_results.items()
            if per_scheme[OURS]["insert"].accesses_per_op
            <= per_scheme[competitor]["insert"].accesses_per_op
        )
        assert wins >= len(basic_task_results) * 0.5, competitor
    near_ties = sum(
        1 for dataset, per_scheme in basic_task_results.items()
        if per_scheme[OURS]["insert"].accesses_per_op
        <= per_scheme["Spruce"]["insert"].accesses_per_op * 1.25
    )
    assert near_ties >= len(basic_task_results) * 0.75

    edges = list(bench_stream("CAIDA").deduplicated())

    def insert_all():
        store = CuckooGraph()
        for u, v in edges:
            store.insert_edge(u, v)
        return store.num_edges

    assert benchmark_callable(benchmark, insert_all) == len(edges)
