"""Table IV: dataset statistics (published values and scaled stand-ins)."""

from repro.bench import format_table
from repro.datasets import DATASET_ORDER, dataset_profile, load_dataset

from .conftest import write_report


def test_table4_dataset_statistics(benchmark):
    """Report published vs scaled statistics for the seven datasets."""
    rows = []
    for name in DATASET_ORDER:
        profile = dataset_profile(name)
        stats = load_dataset(name).statistics()
        rows.append({
            "dataset": name,
            "weighted": profile.weighted,
            "paper_nodes": profile.num_nodes,
            "paper_edges": profile.num_edges,
            "scaled_nodes": stats.num_nodes,
            "scaled_edges": stats.num_edges,
            "scaled_dedup": stats.num_edges_dedup,
            "scaled_avg_deg": round(stats.average_degree, 2),
            "scaled_max_deg": stats.max_degree,
        })
        # The stand-in must preserve the weighted/duplicate character.
        assert stats.has_duplicates == profile.weighted
    write_report("table4_datasets",
                 format_table(rows, title="Dataset statistics (Table IV, scaled stand-ins)"))

    benchmark.pedantic(lambda: load_dataset("CAIDA", seed=3).statistics(),
                       rounds=2, iterations=1)
