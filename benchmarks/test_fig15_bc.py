"""Figure 15: betweenness centrality (Brandes) on the top-degree subgraph."""

from .conftest import run_analytics_figure


def test_fig15_betweenness_running_time(benchmark):
    run_analytics_figure("fig15_bc", "BC", benchmark,
                         stream_limit=1200, subgraph_nodes=100)
