"""Figure 13: connected components (Tarjan) on the top-degree subgraph."""

from .conftest import run_analytics_figure


def test_fig13_connected_components_running_time(benchmark):
    run_analytics_figure("fig13_cc", "CC", benchmark, subgraph_nodes=150)
