"""Figure 6h (extension): production-traffic SLOs over service and tiered lanes.

Not a figure from the paper: this benchmark drives the ``repro.traffic``
open-loop harness against the two deployment schemes the ISSUE names and
asserts the operational claims the harness exists to measure.

* **Ours-Service lane** -- a replicated, group-commit-durable service under a
  zipfian multi-tenant mix with a replica killed (and a fresh follower
  re-attached) mid-run.  The SLO report must be well-formed, carry non-zero
  throughput and a numeric p99 for every trafficked request class, and log
  the injected failure with its recovery.

* **Ours-Tiered lane** -- the skewed-locality shape: a shared zipf(1.1)
  keyspace laid out shard-major over a :class:`~repro.tiered.TieredStore`
  whose hot tier is 25% of the shards.  The admission policy must discover
  the popular shards: the measured-window hot-tier hit rate must clear
  :data:`REQUIRED_HIT_RATE`.

Both lanes land in ``BENCH_fig06h.json`` (written through the gated
``write_bench_payload`` helper, so reruns do not churn the committed file).
"""

from __future__ import annotations

from repro.traffic import preset, run_scenario
from repro.traffic.driver import validate_slo_report

from .conftest import benchmark_callable, write_bench_payload

#: ISSUE acceptance: hot tier (25% of shards) absorbs >= 80% of touches
#: under zipf(1.1) shard-major traffic.
REQUIRED_HIT_RATE = 0.80


def _slim(report: dict) -> dict:
    """The rows worth committing: totals, SLO, failures, tier window."""
    return {
        "scenario": report["scenario"]["name"],
        "totals": report["totals"],
        "slo": report["slo"],
        "failures": report["failures"],
        "tiered": report["tiered"].get("window", {}),
        "replication": report["replication"],
    }


def _trafficked_classes(report: dict) -> list[str]:
    return [kind for kind, entry in report["classes"].items()
            if entry["submitted"]]


def test_fig06h_traffic_slo(benchmark):
    """Run both lanes, assert their SLO claims, emit the JSON payload."""
    # ---- Ours-Service lane: replicated + durable + kill_replica. -------- #
    service_report = run_scenario(preset("failover"))
    validate_slo_report(service_report)
    assert service_report["totals"]["throughput_ops_s"] > 0
    for kind in _trafficked_classes(service_report):
        p99 = service_report["classes"][kind]["latency"]["p99_s"]
        assert isinstance(p99, (int, float)) and p99 >= 0, kind
    # The injected replica kill must be logged with its recovery.
    assert len(service_report["failures"]) == 1
    record = service_report["failures"][0]
    assert record["kind"] == "kill_replica"
    assert record["injected"] is True
    assert record["recovered"] is True, record["detail"]

    # ---- Ours-Tiered lane: zipf(1.1), shard-major, hot tier = 25%. ------ #
    tiered_config = preset("skewed")
    assert tiered_config.hot_shards / tiered_config.num_shards == 0.25
    tiered_report = run_scenario(tiered_config)
    validate_slo_report(tiered_report)
    assert tiered_report["totals"]["throughput_ops_s"] > 0
    for kind in _trafficked_classes(tiered_report):
        p99 = tiered_report["classes"][kind]["latency"]["p99_s"]
        assert isinstance(p99, (int, float)) and p99 >= 0, kind
    window = tiered_report["tiered"]["window"]
    assert window["touches"] > 0
    # The acceptance gate: the policy found the popular shards.
    assert window["hit_rate"] >= REQUIRED_HIT_RATE, (
        f"hot-tier hit rate {window['hit_rate']:.3f} below "
        f"{REQUIRED_HIT_RATE:.0%} under zipf(1.1) shard-major traffic "
        f"(promotions {window['promotions']}, "
        f"hot set {tiered_report['tiered']['end']['hot_set']})"
    )

    write_bench_payload("fig06h", {
        "figure": "fig06h_traffic_slo",
        "required_hit_rate": REQUIRED_HIT_RATE,
        "lanes": {
            "Ours-Service": _slim(service_report),
            "Ours-Tiered": _slim(tiered_report),
        },
    })

    # Representative operation for pytest-benchmark: the smoke scenario
    # end-to-end (bounded: one second of open-loop traffic).
    def smoke_run():
        report = run_scenario(preset("smoke"))
        validate_slo_report(report)
        return report["totals"]["completed"]

    assert benchmark_callable(benchmark, smoke_run) > 0
