"""Table II: the transformation rule of the S-CHT chain lengths (R = 3)."""

from repro.bench import format_table
from repro.core import CuckooGraph, CuckooGraphConfig

from .conftest import benchmark_callable, write_report


def test_table2_transformation_rule(benchmark):
    """Grow one node's neighbourhood and record the chain lengths per step."""
    config = CuckooGraphConfig(initial_scht_length=4)
    n = config.initial_scht_length

    def grow(neighbours: int) -> list[list[int]]:
        graph = CuckooGraph(config)
        observed: list[list[int]] = []
        for v in range(neighbours):
            graph.insert_edge(0, v)
            part2 = graph.part2_of(0)
            if part2 is not None and part2.is_transformed:
                lengths = part2.chain.table_lengths
                if not observed or observed[-1] != lengths:
                    observed.append(list(lengths))
        return observed

    observed = grow(3000)
    rows = [{"step": index, "table_lengths": lengths}
            for index, lengths in enumerate(observed)]
    write_report("table2_transformation",
                 format_table(rows, title="Observed S-CHT chain states (Table II rule)"))

    # The Table II prefix with n = initial length: [n], [n, n/2], [n, n/2, n/2],
    # then a merge to [2n, n] and so on; the observed states must follow it.
    expected_prefix = [
        [n], [n, n // 2], [n, n // 2, n // 2],
        [2 * n, n], [2 * n, n, n],
        [4 * n, 2 * n], [4 * n, 2 * n, 2 * n],
    ]
    assert observed[: len(expected_prefix)] == expected_prefix

    benchmark_callable(benchmark, grow, 1500)
