"""Figure 2: tuning the number of cells per bucket d (4, 8, 16, 32)."""

from repro.bench import format_table, run_parameter_point
from repro.core import CuckooGraphConfig, tuning_grid

from .conftest import bench_stream, benchmark_callable, write_report


def test_fig02_tuning_d(benchmark):
    """Insertion/query throughput and memory for d in {4, 8, 16, 32} on CAIDA."""
    stream = bench_stream("CAIDA")
    rows = []
    memory_by_d = {}
    for d in tuning_grid()["d"]:
        outcome = run_parameter_point(CuckooGraphConfig(d=d), stream, checkpoints=4)
        memory_by_d[d] = outcome["final_memory_bytes"]
        rows.append({
            "d": d,
            "insert_mops_final": round(outcome["insert_series"][-1][1], 4),
            "query_mops": round(outcome["query_mops"], 4),
            "memory_bytes": outcome["final_memory_bytes"],
        })
    write_report("fig02_param_d", format_table(rows, title="Tuning d (Figure 2)"))

    # The paper finds d=4 and d=8 the most memory-efficient settings; larger
    # buckets must not use less memory than d=8.
    assert memory_by_d[8] <= memory_by_d[32]

    benchmark_callable(
        benchmark, run_parameter_point, CuckooGraphConfig(d=8), stream.prefix(800)
    )
