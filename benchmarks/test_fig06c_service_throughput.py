"""Figure 6c (extension): service-layer throughput and latency under traffic.

Not a figure from the paper: this benchmark drives the request-queue front
door (:class:`~repro.service.GraphService` over a 4-shard
``ShardedCuckooGraph``) with N concurrent client threads submitting
single-edge operations, the exact traffic shape the ROADMAP's "heavy
traffic" north star describes.  Clients pipeline their submissions
(submit-then-collect), so the dispatcher coalesces the stream into
micro-batches; the interesting outputs are

* wall-clock operation throughput through the full front-door path,
* request latency percentiles (p50/p95/p99) from the service's own metrics,
* how well the micro-batcher coalesced (mean/max batch size, store batch
  calls versus requests), and
* that the final store state is exactly the submitted edge set at every
  client count -- concurrency must never change observable results.
"""

from __future__ import annotations

import threading
import time

from repro.bench import format_table
from repro.core import ShardedCuckooGraph
from repro.service import GraphService

from .conftest import (bench_stream, benchmark_callable, write_bench_payload,
                       write_report)

CLIENT_COUNTS = (1, 2, 4)

#: Per-run service tuning: large windows, latency-first delay, roomy queue.
SERVICE_KWARGS = dict(max_batch=512, max_delay_s=0.0, queue_capacity=4096)


def _run_traffic(service: GraphService, edges, clients: int, op: str) -> float:
    """Fan ``edges`` out over ``clients`` pipelining threads; return seconds."""
    submit = service.insert_edge if op == "insert" else service.has_edge
    parts = [edges[index::clients] for index in range(clients)]
    outcomes: list[list] = [[] for _ in range(clients)]
    barrier = threading.Barrier(clients + 1)

    def worker(part, sink):
        futures = [submit(u, v) for u, v in part]
        sink.extend(future.result() for future in futures)

    threads = [
        threading.Thread(target=lambda i=i: (barrier.wait(), worker(parts[i], outcomes[i])))
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - start

    flat = [answer for sink in outcomes for answer in sink]
    assert len(flat) == len(edges), "every request future must resolve"
    if op == "insert":
        # Disjoint round-robin parts over distinct edges: each edge is newly
        # inserted exactly once, whichever client carried it.
        assert sum(flat) == len(edges)
    else:
        assert all(flat)
    return seconds


def test_fig06c_service_throughput(benchmark):
    """Front-door insert/query throughput and latency at 1/2/4 clients."""
    stream = bench_stream("CAIDA")
    edges = list(stream.deduplicated())
    rows = []
    for clients in CLIENT_COUNTS:
        store = ShardedCuckooGraph(num_shards=4)
        with GraphService(store, **SERVICE_KWARGS) as service:
            insert_seconds = _run_traffic(service, edges, clients, "insert")
            assert service.store.num_edges == len(edges)
            query_seconds = _run_traffic(service, edges, clients, "query")
            summary = service.metrics_summary()
        latency = summary["latency"]
        # No request may be dropped: everything submitted was resolved.
        assert summary["resolved"] == summary["submitted_total"] == 2 * len(edges)
        assert summary["failed"] == summary["rejected"] == 0
        rows.append({
            "clients": clients,
            "operations": 2 * len(edges),
            "insert_kops": round(len(edges) / insert_seconds / 1e3, 2),
            "query_kops": round(len(edges) / query_seconds / 1e3, 2),
            "p50_us": round(latency["p50_s"] * 1e6, 1),
            "p95_us": round(latency["p95_s"] * 1e6, 1),
            "p99_us": round(latency["p99_s"] * 1e6, 1),
            "batches": summary["batches"],
            "mean_batch": round(summary["mean_batch_size"], 2),
            "max_batch": summary["max_batch_size"],
            "store_calls": summary["store_batch_calls"],
        })

    # Pipelined submission must actually coalesce: far fewer dispatch
    # windows than requests, at every client count.
    for row in rows:
        assert row["batches"] < row["operations"]
        assert row["mean_batch"] >= 1.0

    write_report(
        "fig06c_service_throughput",
        format_table(
            rows,
            columns=["clients", "operations", "insert_kops", "query_kops",
                     "p50_us", "p95_us", "p99_us", "batches", "mean_batch",
                     "max_batch", "store_calls"],
            title="GraphService front door: throughput, latency percentiles and "
                  "batch coalescing vs client count (CAIDA stand-in)",
        ),
    )
    write_bench_payload("fig06c", {
        "figure": "fig06c_service_throughput",
        "dataset": "CAIDA",
        "operations": 2 * len(edges),
        "client_counts": list(CLIENT_COUNTS),
        "service_kwargs": dict(SERVICE_KWARGS),
        "rows": rows,
    })

    def service_insert_all():
        with GraphService(ShardedCuckooGraph(num_shards=4),
                          **SERVICE_KWARGS) as service:
            futures = [service.insert_edge(u, v) for u, v in edges]
            return sum(future.result() for future in futures)

    assert benchmark_callable(benchmark, service_insert_all) == len(edges)
