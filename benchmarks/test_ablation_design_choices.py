"""Ablations of CuckooGraph design choices called out in DESIGN.md.

Beyond the paper's own DENYLIST ablation (Figure 5), three implementation
choices materially affect the space/time balance: the hash family, the
initial S-CHT length ``n``, and whether a shrunken chain collapses back into
the cell's small slots.  This benchmark sweeps each choice on the CAIDA-like
stream and reports modelled accesses and memory so the trade-offs are
visible.
"""

from repro.bench import format_table
from repro.core import CuckooGraph, CuckooGraphConfig

from .conftest import bench_stream, benchmark_callable, write_report


def _run(config: CuckooGraphConfig, edges) -> dict[str, float]:
    graph = CuckooGraph(config)
    for u, v in edges:
        graph.insert_edge(u, v)
    inserted_accesses = graph.accesses
    graph.reset_accesses()
    for u, v in edges:
        graph.has_edge(u, v)
    return {
        "insert_accesses_per_op": inserted_accesses / len(edges),
        "query_accesses_per_op": graph.accesses / len(edges),
        "memory_bytes": graph.memory_bytes(),
        "denylist_entries": len(graph.small_denylist) + len(graph.large_denylist),
    }


def test_ablation_design_choices(benchmark):
    edges = list(bench_stream("CAIDA", 6000).deduplicated())
    variants = {
        "paper defaults": CuckooGraphConfig(),
        "bob hash": CuckooGraphConfig(hash_family="bob"),
        "initial n=1": CuckooGraphConfig(initial_scht_length=1),
        "initial n=8": CuckooGraphConfig(initial_scht_length=8),
        "collapse chains": CuckooGraphConfig(collapse_chain_to_slots=True),
        "d=4": CuckooGraphConfig(d=4),
    }
    rows = []
    results = {}
    for label, config in variants.items():
        outcome = _run(config, edges)
        results[label] = outcome
        rows.append({"variant": label, **{k: round(v, 3) for k, v in outcome.items()}})
    write_report("ablation_design_choices",
                 format_table(rows, title="CuckooGraph design-choice ablations (CAIDA stand-in)"))

    # The hash family must not change structural behaviour materially.
    defaults = results["paper defaults"]
    bob = results["bob hash"]
    assert bob["memory_bytes"] <= defaults["memory_bytes"] * 1.3
    assert bob["query_accesses_per_op"] <= defaults["query_accesses_per_op"] * 1.3
    # A larger initial S-CHT costs memory; a smaller one must not cost more.
    assert results["initial n=8"]["memory_bytes"] >= results["initial n=1"]["memory_bytes"]
    # Every variant stays query-bounded (a handful of accesses per query).
    assert all(outcome["query_accesses_per_op"] < 8 for outcome in results.values())

    benchmark_callable(benchmark, _run, CuckooGraphConfig(), edges[:2000])
