"""Figure 17: CuckooGraph-on-Redis throughput (mini-Redis integration)."""

import time

from repro.bench import format_table
from repro.integrations import CuckooGraphModule, MiniRedisServer

from .conftest import bench_stream, benchmark_callable, write_report


def _throughput(server: MiniRedisServer, commands: list[str]) -> float:
    start = time.perf_counter()
    server.execute_many(commands)
    elapsed = time.perf_counter() - start
    return len(commands) / elapsed / 1e6 if elapsed > 0 else float("inf")


def test_fig17_redis_throughput(benchmark):
    """Insertion/query/deletion throughput of the graph commands through Redis."""
    rows = []
    for dataset in ("CAIDA", "StackOverflow"):
        stream = bench_stream(dataset, 2000)
        server = MiniRedisServer()
        server.load_module(CuckooGraphModule())
        inserts = [f"GINSERT {u} {v}" for u, v in stream]
        queries = [f"GQUERY {u} {v}" for u, v in stream.deduplicated()]
        deletes = [f"GDEL {u} {v}" for u, v in stream.deduplicated()]
        rows.append({
            "dataset": dataset,
            "insert_mops": round(_throughput(server, inserts), 4),
            "query_mops": round(_throughput(server, queries), 4),
            "delete_mops": round(_throughput(server, deletes), 4),
        })
    write_report("fig17_redis",
                 format_table(rows, title="CuckooGraph on mini-Redis (Figure 17)"))

    # The paper's point: command dispatch dominates, so throughput through the
    # server is far below the raw structure but all three operations work.
    assert all(row["insert_mops"] > 0 for row in rows)

    stream = bench_stream("CAIDA", 500)
    def run_through_server():
        server = MiniRedisServer()
        server.load_module(CuckooGraphModule())
        server.execute_many([f"GINSERT {u} {v}" for u, v in stream])
        return server.execute("GSIZE")

    assert benchmark_callable(benchmark, run_through_server) > 0
