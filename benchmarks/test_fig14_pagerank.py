"""Figure 14: PageRank (100 iterations) on the top-degree subgraph."""

from .conftest import run_analytics_figure


def test_fig14_pagerank_running_time(benchmark):
    run_analytics_figure("fig14_pagerank", "PR", benchmark,
                         subgraph_nodes=150, iterations=100)
