"""Figure 11: SSSP (Dijkstra) running time from the top-degree sources."""

from .conftest import run_analytics_figure


def test_fig11_sssp_running_time(benchmark):
    run_analytics_figure("fig11_sssp", "SSSP", benchmark,
                         subgraph_nodes=150, source_count=10)
