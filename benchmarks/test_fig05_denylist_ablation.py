"""Figure 5: ablation of the DENYLIST optimisation (DL vs expand-on-failure)."""

from repro.bench import format_table, run_denylist_ablation

from .conftest import bench_stream, benchmark_callable, write_report


def test_fig05_denylist_ablation(benchmark):
    """Compare CuckooGraph with the denylist against the 1.5x-expansion fallback."""
    stream = bench_stream("CAIDA")
    outcome = run_denylist_ablation(stream)

    rows = []
    for label, result in outcome.items():
        rows.append({
            "variant": label,
            "final_insert_mops": round(result["insert_series"][-1][1], 4),
            "query_mops": round(result["query_mops"], 4),
            "memory_bytes": result["final_memory_bytes"],
        })
    write_report(
        "fig05_denylist_ablation",
        format_table(rows, title="DENYLIST ablation on the CAIDA stand-in (Figure 5)"),
    )

    with_dl = outcome["DL"]["final_memory_bytes"]
    without_dl = outcome["DL-free"]["final_memory_bytes"]
    # The paper reports the DL adding only ~4KB of memory overall; in the
    # scaled run the two variants must stay within a small factor.
    assert with_dl <= without_dl * 1.25

    benchmark_callable(benchmark, run_denylist_ablation, stream.prefix(800))
