"""Table III: empirical amortized costs behind the complexity comparison.

The table itself states asymptotic complexities; the measurable counterpart
is how the per-operation cost *scales with node degree*: O(1) schemes stay
flat while O(deg)/O(log deg) schemes grow.  This benchmark measures modelled
memory accesses per edge query at two very different hub degrees for every
scheme and reports the growth factor.
"""

from repro.bench import SCHEMES, format_table, build_store

from .conftest import benchmark_callable, write_report


def _accesses_per_query(store, degree: int, probes: int = 200) -> float:
    for v in range(1, degree + 1):
        store.insert_edge(0, v)
    store.reset_accesses() if hasattr(store, "reset_accesses") else None
    before = store.accesses
    for v in range(1, probes + 1):
        store.has_edge(0, v)
    return (store.accesses - before) / probes


def test_table3_query_cost_scaling(benchmark):
    """Per-query access cost at degree 32 versus degree 2048, per scheme."""
    rows = []
    growth: dict[str, float] = {}
    for scheme in SCHEMES:
        low = _accesses_per_query(build_store(scheme), degree=32)
        high = _accesses_per_query(build_store(scheme), degree=2048)
        growth[scheme] = high / low if low else float("inf")
        rows.append({
            "scheme": scheme,
            "accesses_per_query_deg32": round(low, 2),
            "accesses_per_query_deg2048": round(high, 2),
            "growth_factor": round(growth[scheme], 2),
        })
    write_report("table3_complexity",
                 format_table(rows, title="Edge-query cost vs node degree (Table III)"))

    # CuckooGraph's O(1) query: cost grows by at most a small constant factor
    # (extra S-CHT tables), far less than the degree ratio of 64x.
    assert growth["Ours"] < 4.0
    # LiveGraph's O(deg(v)) query must grow substantially with degree.
    assert growth["LiveGraph"] > 8.0

    benchmark_callable(benchmark, _accesses_per_query, build_store("Ours"), 2048)
