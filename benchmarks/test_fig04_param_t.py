"""Figure 4: tuning the maximum kick-out budget T (50-350)."""

from repro.bench import format_table, run_parameter_point
from repro.core import CuckooGraphConfig, tuning_grid

from .conftest import bench_stream, benchmark_callable, write_report


def test_fig04_tuning_t(benchmark):
    """Insertion/query throughput and memory for T in {50, 150, 250, 350}."""
    stream = bench_stream("CAIDA")
    rows = []
    memory_by_t = {}
    for T in tuning_grid()["T"]:
        outcome = run_parameter_point(CuckooGraphConfig(T=T), stream, checkpoints=4)
        memory_by_t[T] = outcome["final_memory_bytes"]
        rows.append({
            "T": T,
            "insert_mops_final": round(outcome["insert_series"][-1][1], 4),
            "query_mops": round(outcome["query_mops"], 4),
            "memory_bytes": outcome["final_memory_bytes"],
        })
    write_report("fig04_param_t", format_table(rows, title="Tuning T (Figure 4)"))

    # The paper finds T makes no difference to memory usage; allow 5% noise.
    values = list(memory_by_t.values())
    assert max(values) <= min(values) * 1.05

    benchmark_callable(
        benchmark, run_parameter_point, CuckooGraphConfig(T=250), stream.prefix(800)
    )
