"""Figure 8: deletion throughput of every scheme on the seven datasets."""

from repro.core import CuckooGraph

from .conftest import (
    assert_ours_wins_majority,
    bench_stream,
    benchmark_callable,
    operation_payload,
    operation_table,
    write_bench_payload,
    write_report,
)


def test_fig08_deletion_throughput(benchmark, basic_task_results):
    """Regenerate the Figure 8 series and benchmark CuckooGraph deletions."""
    write_report("fig08_deletion", operation_table(basic_task_results, "delete"))
    write_bench_payload(
        "fig08", operation_payload("fig08_deletion", basic_task_results, "delete")
    )
    # Deletion is the paper's narrowest win (3.63x over Spruce on average,
    # because of reverse transformations); require a majority, not a sweep.
    assert_ours_wins_majority(basic_task_results, "delete", minimum_fraction=0.5)

    edges = list(bench_stream("CAIDA").deduplicated())

    def insert_then_delete_all():
        store = CuckooGraph()
        for u, v in edges:
            store.insert_edge(u, v)
        for u, v in edges:
            store.delete_edge(u, v)
        return store.num_edges

    assert benchmark_callable(benchmark, insert_then_delete_all) == 0
