"""Figure 9(a-g): modelled memory usage versus number of inserted items."""

from repro.bench import OURS, SCHEMES, format_table, run_memory_curve
from repro.datasets import DATASET_ORDER

from .conftest import bench_stream, benchmark_callable, write_report


def test_fig09_memory_curves(benchmark):
    """Regenerate the per-dataset memory curves and check CuckooGraph's rank."""
    rows = []
    finals: dict[str, dict[str, int]] = {}
    for dataset in DATASET_ORDER:
        stream = bench_stream(dataset)
        finals[dataset] = {}
        for scheme in SCHEMES:
            points = run_memory_curve(scheme, dataset, stream, samples=4)
            finals[dataset][scheme] = points[-1].memory_bytes
            rows.extend(point.as_row() for point in points)
    write_report(
        "fig09_memory",
        format_table(rows, columns=["dataset", "scheme", "inserted", "memory_bytes"],
                     title="Memory usage vs inserted items (modelled bytes)"),
    )

    # Shape check: CuckooGraph must use less memory than the adjacency-list /
    # sorted-block schemes on most datasets.  The Spruce and WBI comparisons
    # are *not* asserted here: at scaled-down sizes with dense synthetic node
    # identifiers their index overheads (vEB bit vectors over the identifier
    # space, the K x K bucket matrix) all but vanish, which flatters them
    # relative to the paper's full-scale runs -- see EXPERIMENTS.md.
    for competitor in ("LiveGraph", "Sortledton"):
        wins = sum(
            1 for dataset in DATASET_ORDER
            if finals[dataset][OURS] <= finals[dataset][competitor]
        )
        assert wins >= len(DATASET_ORDER) // 2 + 1, (
            f"CuckooGraph should be smaller than {competitor} on most datasets"
        )

    stream = bench_stream("CAIDA")
    benchmark_callable(benchmark, run_memory_curve, OURS, "CAIDA", stream, 4)
