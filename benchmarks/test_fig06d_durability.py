"""Figure 6d (extension): what durability costs, and what batching buys back.

Not a figure from the paper: the paper's stack is purely in-memory, and this
benchmark measures the three quantities that decide whether the durability
subsystem (:mod:`repro.persist`) is deployable in front of it:

* **Logging overhead** -- insert throughput of the WAL-wrapped sharded store
  against the bare in-memory one, with buffered appends (``wal-buffered``)
  and with an fsync per commit (``wal-fsync``);
* **Group-commit batching gains** -- the same fsync-per-commit store driven
  at growing batch sizes (each batch call is exactly one WAL record and one
  fsync), plus the full service path (``durability="batch"``: one fsync per
  dispatched micro-batch, before futures resolve);
* **Recovery throughput** -- edges/second of ``recover()`` replaying the WAL
  (serially and with per-shard parallel replay) and from a snapshot after
  compaction.

All store directories live under pytest's ``tmp_path``, so a benchmark run
leaves nothing behind.
"""

from __future__ import annotations

import time

from repro.bench import format_table
from repro.core import ShardedCuckooGraph
from repro.persist import PersistentStore, recover
from repro.service import GraphService

from .conftest import (bench_stream, benchmark_callable, write_bench_payload,
                       write_report)

NUM_SHARDS = 4

#: Batch sizes for the group-commit sweep (ops per fsync).
COMMIT_BATCH_SIZES = (1, 16, 128, 1024)

#: Chunk size used when measuring pure logging overhead (large enough that
#: per-call dispatch is negligible for every store).
LOAD_CHUNK = 256


def _chunks(edges, size):
    for start in range(0, len(edges), size):
        yield edges[start:start + size]


def _timed_insert(store, edges, chunk_size) -> float:
    start = time.perf_counter()
    for chunk in _chunks(edges, chunk_size):
        store.insert_edges(chunk)
    return time.perf_counter() - start


def test_fig06d_durability(benchmark, tmp_path):
    """Logging overhead, group-commit gains and recovery edges/sec."""
    edges = list(bench_stream("CAIDA").deduplicated())
    operations = len(edges)

    # ---------------- logging overhead ------------------------------- #
    overhead_rows = []
    baseline_seconds = None
    variants = [
        ("in-memory", lambda: ShardedCuckooGraph(num_shards=NUM_SHARDS)),
        ("wal-buffered", lambda: PersistentStore(
            tmp_path / "overhead-buffered",
            store=ShardedCuckooGraph(num_shards=NUM_SHARDS),
            sync_on_commit=False, compact_wal_bytes=None, own_store=True)),
        ("wal-fsync", lambda: PersistentStore(
            tmp_path / "overhead-fsync",
            store=ShardedCuckooGraph(num_shards=NUM_SHARDS),
            sync_on_commit=True, compact_wal_bytes=None, own_store=True)),
    ]
    for label, factory in variants:
        store = factory()
        seconds = _timed_insert(store, edges, LOAD_CHUNK)
        assert store.num_edges == operations
        if baseline_seconds is None:
            baseline_seconds = seconds
        summary = store.persistence_summary() if isinstance(store, PersistentStore) else {}
        overhead_rows.append({
            "variant": label,
            "operations": operations,
            "kops": round(operations / seconds / 1e3, 2),
            "overhead_x": round(seconds / baseline_seconds, 3),
            "wal_records": summary.get("wal_records", 0),
            "fsyncs": summary.get("wal_syncs", 0),
            "wal_kib": round(summary.get("wal_bytes", 0) / 1024, 1),
        })
        store.close()
    # The WAL variants must have logged exactly one record per batch call
    # (that is what makes a group commit one fsync), spread over the shards'
    # segments.
    batch_calls = len(list(_chunks(edges, LOAD_CHUNK)))
    for row in overhead_rows[1:]:
        assert row["wal_records"] >= batch_calls
    # Per-commit fsyncs must actually have happened in the fsync variant
    # and not in the buffered one (close adds one final fsync per segment).
    assert overhead_rows[2]["fsyncs"] >= batch_calls
    assert overhead_rows[1]["fsyncs"] == 0

    # ---------------- group-commit batch-size sweep ------------------- #
    commit_rows = []
    for batch_size in COMMIT_BATCH_SIZES:
        store = PersistentStore(
            tmp_path / f"commit-{batch_size}",
            store=ShardedCuckooGraph(num_shards=NUM_SHARDS),
            sync_on_commit=True, compact_wal_bytes=None, own_store=True)
        seconds = _timed_insert(store, edges, batch_size)
        assert store.num_edges == operations
        fsyncs = store.persistence_summary()["wal_syncs"]
        commit_rows.append({
            "path": "store",
            "ops_per_commit": batch_size,
            "operations": operations,
            "kops": round(operations / seconds / 1e3, 2),
            "fsyncs": fsyncs,
        })
        store.close()
    # One group commit is one batch call; fsyncs shrink as batches grow.
    assert all(earlier["fsyncs"] > later["fsyncs"]
               for earlier, later in zip(commit_rows, commit_rows[1:]))

    # The service path: pipelined submissions, one fsync per dispatched
    # micro-batch, futures resolve only after their commit is durable.
    store = PersistentStore(
        tmp_path / "commit-service",
        store=ShardedCuckooGraph(num_shards=NUM_SHARDS),
        sync_on_commit=False, compact_wal_bytes=None, own_store=True)
    with GraphService(store, max_batch=512, queue_capacity=len(edges),
                      own_store=True, durability="batch") as service:
        start = time.perf_counter()
        futures = [service.insert_edge(u, v) for u, v in edges]
        resolved = sum(future.result() for future in futures)
        seconds = time.perf_counter() - start
        summary = service.metrics_summary()
    assert resolved == operations
    assert summary["group_commits"] >= 1
    commit_rows.append({
        "path": "service",
        "ops_per_commit": round(operations / summary["group_commits"], 1),
        "operations": operations,
        "kops": round(operations / seconds / 1e3, 2),
        "fsyncs": summary["group_commits"],
    })

    # ---------------- recovery throughput ----------------------------- #
    recovery_rows = []

    def build_dir(name, checkpoint):
        store = PersistentStore(
            tmp_path / name, store=ShardedCuckooGraph(num_shards=NUM_SHARDS),
            sync_on_commit=False, compact_wal_bytes=None, own_store=True)
        for chunk in _chunks(edges, LOAD_CHUNK):
            store.insert_edges(chunk)
        if checkpoint:
            store.checkpoint()
        store.close()
        return tmp_path / name

    for label, checkpoint, parallel in (
        ("wal-serial", False, False),
        ("wal-parallel", False, True),
        ("snapshot", True, False),
    ):
        directory = build_dir(f"recover-{label}", checkpoint)
        start = time.perf_counter()
        recovered = recover(directory, store=ShardedCuckooGraph(num_shards=NUM_SHARDS),
                            parallel=parallel)
        seconds = time.perf_counter() - start
        assert recovered.num_edges == operations
        assert sorted(recovered.edges()) == sorted(edges)
        stats = recovered.last_recovery
        recovery_rows.append({
            "source": label,
            "snapshot_rows": stats["snapshot_rows"],
            "wal_ops": stats["wal_ops"],
            "edges": operations,
            "seconds": round(seconds, 4),
            "edges_per_s": round(operations / seconds, 0),
        })
        recovered.close()
    # After compaction the WAL is empty: recovery must come from the snapshot.
    assert recovery_rows[-1]["wal_ops"] == 0
    assert recovery_rows[-1]["snapshot_rows"] == operations

    write_report(
        "fig06d_durability",
        "\n\n".join([
            format_table(
                overhead_rows,
                columns=["variant", "operations", "kops", "overhead_x",
                         "wal_records", "fsyncs", "wal_kib"],
                title="Durability logging overhead: WAL-wrapped sharded store "
                      "vs in-memory (CAIDA stand-in)"),
            format_table(
                commit_rows,
                columns=["path", "ops_per_commit", "operations", "kops", "fsyncs"],
                title="Group commit: throughput vs operations per fsync "
                      "(store batches and the durability=\"batch\" service)"),
            format_table(
                recovery_rows,
                columns=["source", "snapshot_rows", "wal_ops", "edges",
                         "seconds", "edges_per_s"],
                title="Recovery throughput: WAL replay (serial / per-shard "
                      "parallel) and snapshot load"),
        ]),
    )
    write_bench_payload("fig06d", {
        "figure": "fig06d_durability",
        "dataset": "CAIDA",
        "operations": operations,
        "num_shards": NUM_SHARDS,
        "commit_batch_sizes": list(COMMIT_BATCH_SIZES),
        "overhead_rows": overhead_rows,
        "commit_rows": commit_rows,
        "recovery_rows": recovery_rows,
    })

    # Recovery is idempotent, so the directory is built once and only the
    # recover() + close() pair is timed.
    bench_dir = build_dir("recover-bench", False)

    def recover_wal_serial():
        recovered = recover(bench_dir, store=ShardedCuckooGraph(num_shards=NUM_SHARDS))
        count = recovered.num_edges
        recovered.close()
        return count

    assert benchmark_callable(benchmark, recover_wal_serial) == operations
