"""Figure 6g (extension): incremental analytics latency vs mutation rate.

Not a figure from the paper: this benchmark measures the axis the
incremental analytics replica exists to move -- repeated analytics cost on
a slowly-mutating graph should scale with the **mutation count**, not the
graph size.  A clustered graph (many ring components, so every node keeps
an outgoing edge and the node universe never changes) takes rounds of
component-confined edge churn; after each round, the same three dashboard
queries (PageRank, weakly connected components, top-k degrees) are timed
two ways on the *same replica state*:

* **Ours-Incremental** -- the :class:`~repro.analytics.AnalyticsFollower`
  folds the delta into its maintained kernels (one batched refetch of the
  dirty sources, dirty-frontier re-push) and answers from them;
* **Recompute** -- canonical kernels from scratch through a fresh
  :class:`TraversalEngine`, the O(graph) baseline every probe is also
  byte-compared against.

Acceptance gate (ISSUE 7): at the lowest mutation rate, the incremental
re-run must be at least ``REQUIRED_SPEEDUP``x faster than full recompute.
Parity is asserted unconditionally at every probe -- the speedup may never
be bought with drift.

Results land as the usual text table plus machine-readable
``BENCH_fig06g.json`` for CI trend tooling.
"""

from __future__ import annotations

import random
import time

from repro.analytics import (
    TraversalEngine,
    canonical_components,
    canonical_pagerank,
    top_degree_nodes,
)
from repro.analytics.incremental import AnalyticsFollower
from repro.bench import format_table
from repro.persist import PersistentStore
from repro.replicate import Primary

from .conftest import benchmark_callable, write_bench_payload, write_report

#: Ring components: COMPONENTS * COMPONENT_SIZE nodes, same count of base
#: edges, no dangling nodes, constant node universe under the churn below.
COMPONENTS = 120
COMPONENT_SIZE = 25

#: PageRank sweeps (both sides use the same count, so parity is exact).
ITERATIONS = 25

#: Edges mutated per round, low to high.  The low point carries the gate.
MUTATION_COUNTS = (4, 64, 512)

#: Measured rounds per mutation count (after one unmeasured warm round).
ROUNDS = 5

#: ISSUE acceptance: incremental >= 5x faster at the low-mutation point.
REQUIRED_SPEEDUP = 5.0

TOP_K = 10


def build_base_edges() -> list[tuple[int, int]]:
    edges = []
    for component in range(COMPONENTS):
        offset = component * COMPONENT_SIZE
        edges.extend(
            (offset + i, offset + (i + 1) % COMPONENT_SIZE)
            for i in range(COMPONENT_SIZE)
        )
    return edges


def mutate(rng: random.Random, store, extra: set, count: int) -> None:
    """Insert/delete ``count`` non-ring edges inside single components.

    Ring edges are never touched, so every node keeps at least one outgoing
    edge (no dangling transitions) and the node universe stays constant --
    the steady-state regime the incremental PageRank path is built for.
    """
    inserts, deletes = [], []
    changed = 0
    while changed < count:
        offset = rng.randrange(COMPONENTS) * COMPONENT_SIZE
        u = offset + rng.randrange(COMPONENT_SIZE)
        v = offset + rng.randrange(COMPONENT_SIZE)
        if u == v or (u - offset + 1) % COMPONENT_SIZE == v - offset:
            continue  # self-loop or a ring edge
        if (u, v) in extra:
            deletes.append((u, v))
            extra.discard((u, v))
        else:
            inserts.append((u, v))
            extra.add((u, v))
        changed += 1
    if inserts:
        store.insert_edges(inserts)
    if deletes:
        store.delete_edges(deletes)


def run_incremental(primary, follower) -> dict:
    """Barrier + delta fold + the three dashboard queries, maintained."""
    follower.wait_for(primary.commit_index)
    follower.refresh_analytics()
    return {
        "pagerank": follower.pagerank(),
        "wcc": follower.components(),
        "top": follower.top_degree_nodes(TOP_K),
    }


def run_recompute(replica) -> dict:
    """The same three queries, canonical kernels from scratch."""
    return {
        "pagerank": canonical_pagerank(replica, iterations=ITERATIONS,
                                       engine=TraversalEngine(replica)),
        "wcc": canonical_components(replica, engine=TraversalEngine(replica)),
        "top": top_degree_nodes(replica, TOP_K, engine=TraversalEngine(replica)),
    }


def test_fig06g_incremental_analytics(benchmark):
    rng = random.Random(20240515)
    store = PersistentStore(None, scheme="sharded", sync_on_commit=False,
                            compact_wal_bytes=None)
    primary = Primary(store)
    follower = AnalyticsFollower(scheme="sharded", iterations=ITERATIONS,
                                 poll_slice_s=0.005)
    primary.attach(follower)

    base_edges = build_base_edges()
    rows = []
    try:
        store.insert_edges(base_edges)
        primary.sync_and_pump()
        follower.wait_for(primary.commit_index)
        follower.refresh_analytics()  # pay the one-time full materialization
        extra: set = set()

        for mutations in MUTATION_COUNTS:
            incremental_s: list[float] = []
            recompute_s: list[float] = []
            for round_no in range(ROUNDS + 1):
                mutate(rng, store, extra, mutations)
                primary.sync_and_pump()

                started = time.perf_counter()
                served = run_incremental(primary, follower)
                incremental_elapsed = time.perf_counter() - started

                replica = follower.store
                started = time.perf_counter()
                reference = run_recompute(replica)
                recompute_elapsed = time.perf_counter() - started

                # Parity first: bit-exact at every probe, warm rounds included.
                assert served == reference, (
                    f"incremental outputs diverged at mutations={mutations} "
                    f"round={round_no}"
                )
                if round_no:  # round 0 is the unmeasured warm round
                    incremental_s.append(incremental_elapsed)
                    recompute_s.append(recompute_elapsed)

            mean_incremental = sum(incremental_s) / len(incremental_s)
            mean_recompute = sum(recompute_s) / len(recompute_s)
            speedup = mean_recompute / mean_incremental \
                if mean_incremental > 0 else float("inf")
            rows.append({
                "mutations": mutations,
                "incremental_ms": round(mean_incremental * 1e3, 3),
                "recompute_ms": round(mean_recompute * 1e3, 3),
                "speedup": round(speedup, 2),
            })

        stats = follower.analytics_stats()
        nodes = COMPONENTS * COMPONENT_SIZE

        # The acceptance gate rides the lowest mutation rate: re-run cost
        # must track the 4-edge delta, not the 3000-node graph.
        low = rows[0]
        assert low["speedup"] >= REQUIRED_SPEEDUP, (
            f"incremental re-run only {low['speedup']}x faster than full "
            f"recompute at {low['mutations']} mutations "
            f"(required {REQUIRED_SPEEDUP}x): {rows}"
        )

        title = (
            f"Incremental analytics vs recompute ({COMPONENTS}x"
            f"{COMPONENT_SIZE}-node ring components, {ITERATIONS} PR sweeps, "
            f"{ROUNDS} rounds/point)"
        )
        write_report(
            "fig06g_incremental_analytics",
            format_table(
                rows,
                columns=["mutations", "incremental_ms", "recompute_ms",
                         "speedup"],
                title=title,
            ),
        )
        write_bench_payload("fig06g", {
            "figure": "fig06g_incremental_analytics",
            "dataset": f"synthetic-rings-{COMPONENTS}x{COMPONENT_SIZE}",
            "nodes": nodes,
            "base_edges": len(base_edges),
            "iterations": ITERATIONS,
            "rounds_per_point": ROUNDS,
            "top_k": TOP_K,
            "required_speedup": REQUIRED_SPEEDUP,
            "speedup_at_low_point": low["speedup"],
            "analytics_stats": stats,
            "rows": rows,
        })

        def dashboard_round():
            mutate(rng, store, extra, MUTATION_COUNTS[0])
            primary.sync_and_pump()
            return run_incremental(primary, follower)

        assert set(benchmark_callable(benchmark, dashboard_round)) == \
            {"pagerank", "wcc", "top"}
    finally:
        follower.close()
        primary.close()
        store.close()
