"""Figure 3: tuning the expansion loading-rate threshold G (0.8-0.95)."""

from repro.bench import format_table, run_parameter_point
from repro.core import CuckooGraphConfig, tuning_grid

from .conftest import bench_stream, benchmark_callable, write_report


def test_fig03_tuning_g(benchmark):
    """Insertion/query throughput and memory for G in {0.8, 0.85, 0.9, 0.95}."""
    stream = bench_stream("CAIDA")
    rows = []
    memory_by_g = {}
    for G in tuning_grid()["G"]:
        config = CuckooGraphConfig(G=G, lam=min(0.4, 2 * G / 3))
        outcome = run_parameter_point(config, stream, checkpoints=4)
        memory_by_g[G] = outcome["final_memory_bytes"]
        rows.append({
            "G": G,
            "insert_mops_final": round(outcome["insert_series"][-1][1], 4),
            "query_mops": round(outcome["query_mops"], 4),
            "memory_bytes": outcome["final_memory_bytes"],
        })
    write_report("fig03_param_g", format_table(rows, title="Tuning G (Figure 3)"))

    # The paper observes that larger G means smaller memory usage.
    assert memory_by_g[0.95] <= memory_by_g[0.8]

    benchmark_callable(
        benchmark, run_parameter_point, CuckooGraphConfig(G=0.9), stream.prefix(800)
    )
