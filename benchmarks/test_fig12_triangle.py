"""Figure 12: triangle counting around the highest-degree nodes."""

from .conftest import run_analytics_figure


def test_fig12_triangle_counting_running_time(benchmark):
    run_analytics_figure("fig12_triangle", "TC", benchmark,
                         stream_limit=1200, node_count=3)
