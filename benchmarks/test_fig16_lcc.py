"""Figure 16: local clustering coefficient on the top-degree subgraph."""

from .conftest import run_analytics_figure


def test_fig16_lcc_running_time(benchmark):
    run_analytics_figure("fig16_lcc", "LCC", benchmark,
                         stream_limit=1200, subgraph_nodes=120)
